"""Structured BST-generable BARs and gene-row BAR construction (Section 3.2).

Every BAR the paper mines from a BST has the special form

    (CAR portion) AND (OR over supporting class samples of
                       (AND of that sample's exclusion-list clauses))

where the exclusion clauses for a supporting sample ``s`` cover exactly the
outside samples that express the whole CAR portion (any other outside sample
already fails the conjunction, which is how black dots let clauses be dropped
when rules are ANDed — Section 3.2.1's simplification).

:class:`StructuredBAR` captures that form compactly as just the CAR itemset
plus the class support set; branches and clauses are derived from the BST on
demand.  Algorithm 2's gene-row BAR is the single-gene case, and ANDing two
StructuredBARs is itemset union + support intersection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from ..rules.bar import BAR
from ..rules.boolexpr import FALSE, TRUE, And, Expr, Or, conjunction
from ..rules.car import CAR
from .table import BST, ExclusionList


@dataclass(frozen=True)
class StructuredBAR:
    """A BST-generable BAR in the paper's special form.

    Attributes:
        car_items: the CAR portion of the antecedent (non-empty itemset).
        consequent: class id.
        support: the class samples supporting the rule (all of which express
            every CAR item) — the rule is 100% confident by construction.
    """

    car_items: FrozenSet[int]
    consequent: int
    support: FrozenSet[int]

    def excluded_outside(self, bst: BST) -> Tuple[int, ...]:
        """Outside samples that express the whole CAR portion — exactly the
        samples the exclusion clauses must "actively exclude" (Theorem 2)."""
        ds = bst.dataset
        matching = ds.support_bits_of_itemset(self.car_items)
        return (matching & bst.outside_bits).members()

    def branch_clauses(self, bst: BST) -> Dict[int, Tuple[ExclusionList, ...]]:
        """For each supporting sample, the exclusion lists its branch needs."""
        threatened = self.excluded_outside(bst)
        out: Dict[int, Tuple[ExclusionList, ...]] = {}
        for s in sorted(self.support):
            clauses = []
            for h in threatened:
                elist = bst.pair_exclusion_list(s, h)
                if elist is None:
                    # No gene shared between s and h was materialized during
                    # BST construction; derive the pair list directly from
                    # the packed item-row difference.
                    ds = bst.dataset
                    negatives = (ds.sample_bits(h) - ds.sample_bits(s)).members()
                    if negatives:
                        elist = ExclusionList(h, negatives, negated=True)
                    else:
                        positives = (
                            ds.sample_bits(s) - ds.sample_bits(h)
                        ).members()
                        elist = ExclusionList(h, positives, negated=not positives)
                clauses.append(elist)
            out[s] = tuple(clauses)
        return out

    def expr(self, bst: BST) -> Expr:
        """The antecedent as a boolean expression over item literals."""
        car_part = conjunction(sorted(self.car_items))
        branches = []
        for _, clauses in self.branch_clauses(bst).items():
            parts: List[Expr] = [e.clause() for e in clauses]
            if not parts:
                branches.append(TRUE)
            elif len(parts) == 1:
                branches.append(parts[0])
            else:
                branches.append(And(tuple(parts)))
        if not branches:
            disjunction: Expr = FALSE
        elif len(branches) == 1:
            disjunction = branches[0]
        else:
            disjunction = Or(tuple(branches))
        return (car_part & disjunction).simplify()

    def to_bar(self, bst: BST) -> BAR:
        return BAR(self.expr(bst), self.consequent)

    def car(self) -> CAR:
        """Theorem 2's CAR: strip every exclusion clause."""
        return CAR(self.car_items, self.consequent)

    def and_with(self, other: "StructuredBAR") -> "StructuredBAR":
        """AND two structured BARs (Section 3.2.1): the CAR portions union
        and the supports intersect."""
        if self.consequent != other.consequent:
            raise ValueError("cannot AND rules with different consequents")
        return StructuredBAR(
            car_items=self.car_items | other.car_items,
            consequent=self.consequent,
            support=self.support & other.support,
        )

    @property
    def complexity(self) -> int:
        """The number of CAR antecedent genes (Theorem 1's notion)."""
        return len(self.car_items)

    def describe(self, bst: BST) -> str:
        ds = bst.dataset
        items = ",".join(ds.item_names[i] for i in sorted(self.car_items))
        supp = ",".join(ds.sample_name(s) for s in sorted(self.support))
        return (
            f"{{{items}}}+exclusions => {ds.class_names[self.consequent]}"
            f" (support {{{supp}}})"
        )


def gene_row_bar(bst: BST, gene: int) -> StructuredBAR:
    """Algorithm 2: the 100%-confident gene-row BAR for one BST row.

    The result is the disjunction of the row's cell rules, conjoined with the
    gene itself; in structured form that is simply ``car_items = {gene}`` with
    the row's support set.

    Raises ``ValueError`` when no class sample expresses the gene (the row is
    blank and there is no rule).
    """
    support = bst.row_support(gene)
    if not support:
        raise ValueError(
            f"gene {gene} is expressed by no {bst.class_label} sample"
        )
    return StructuredBAR(
        car_items=frozenset((gene,)),
        consequent=bst.class_id,
        support=support,
    )


def all_gene_row_bars(bst: BST) -> List[StructuredBAR]:
    """Gene-row BARs for every non-blank row, in gene order (Figure 2)."""
    return [gene_row_bar(bst, gene) for gene in sorted(bst.nonblank_genes())]


def is_maximally_complex(bst: BST, rule: StructuredBAR) -> bool:
    """Section 4.1: no gene can join the CAR portion without shrinking the
    class support set — i.e. the CAR portion is the closure of the support."""
    if not rule.support:
        return rule.car_items == frozenset()
    closure = bst.dataset.sample_rows.reduce_and(sorted(rule.support))
    return rule.car_items == closure.to_frozenset()
