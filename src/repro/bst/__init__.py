"""Boolean Structure Tables: construction, row BARs, and (MC)2BAR mining."""

from .mining import mine_mcmcbar, mine_mcmcbar_per_sample
from .row_bar import StructuredBAR, all_gene_row_bars, gene_row_bar, is_maximally_complex
from .table import BST, BSTCell, ExclusionList, build_all_bsts

__all__ = [
    "BST", "BSTCell", "ExclusionList", "build_all_bsts",
    "StructuredBAR", "gene_row_bar", "all_gene_row_bars", "is_maximally_complex",
    "mine_mcmcbar", "mine_mcmcbar_per_sample",
]

from .culling import (
    cull_bst,
    cull_cell_lists,
    culling_ratio,
    duplicate_row_keep_mask,
)

__all__ += [
    "cull_bst",
    "cull_cell_lists",
    "culling_ratio",
    "duplicate_row_keep_mask",
]
