"""Exclusion-list culling (Section 8 future work).

The paper proposes reducing BSTC's per-query classification time "by
carefully culling BST exclusion lists".  This module implements the
semantics-preserving cull: within a cell, an exclusion list whose clause is
*implied* by another list's clause is redundant in the cell rule's
conjunction and can be dropped.

For two same-polarity lists the implication test is containment:

* negated lists are disjunctions of negations, so ``A ⇒ B`` iff
  ``items(A) ⊆ items(B)`` — keep the smaller list, drop the larger;
* positive lists likewise.

Culling preserves every cell rule's *boolean* semantics exactly (tested),
and shrinks the work of both the reference evaluator and the explanation
machinery.  The quantized (Algorithm 5) value of a cell can change — the
dropped list's ``V_e`` no longer participates in the min — so the ablation
driver measures the accuracy impact alongside the speedup.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .table import BST, BSTCell, ExclusionList


def cull_cell_lists(
    lists: Tuple[ExclusionList, ...]
) -> Tuple[ExclusionList, ...]:
    """Drop the lists implied by another list of the same cell.

    Keeps, for each polarity, only the containment-minimal item sets (with
    duplicates removed).  Order of the survivors is preserved.
    """
    survivors: List[ExclusionList] = []
    item_sets = [frozenset(e.items) for e in lists]
    for i, elist in enumerate(lists):
        redundant = False
        for j, other in enumerate(lists):
            if i == j or other.negated != elist.negated:
                continue
            if item_sets[j] < item_sets[i]:
                redundant = True
                break
            if item_sets[j] == item_sets[i] and j < i:
                redundant = True  # exact duplicate: keep the first
                break
        if not redundant:
            survivors.append(elist)
    return tuple(survivors)


def cull_bst(bst: BST) -> BST:
    """A new BST with every cell's redundant exclusion lists removed."""
    culled_cells: Dict[Tuple[int, int], BSTCell] = {}
    for (gene, sample), cell in bst._cells.items():
        if cell.black_dot:
            culled_cells[(gene, sample)] = cell
        else:
            culled_cells[(gene, sample)] = BSTCell(
                gene=cell.gene,
                sample=cell.sample,
                black_dot=False,
                exclusion_lists=cull_cell_lists(cell.exclusion_lists),
            )
    return BST(
        dataset=bst.dataset,
        class_id=bst.class_id,
        columns=bst.columns,
        outside=bst.outside,
        cells=culled_cells,
        pair_lists=dict(bst._pair_lists),
    )


def duplicate_row_keep_mask(matrix: np.ndarray) -> np.ndarray:
    """Boolean keep-mask over the rows of a boolean matrix: the first
    occurrence of every distinct row is kept, later exact duplicates are
    dropped.

    This is the *value-preserving* subset of the cull above, used by the
    compiled evaluation plans (:mod:`repro.core.plan`): two identical
    outside rows ``h1 == h2`` produce identical pair exclusion lists
    against every class row *and* express exactly the same genes, so under
    the idempotent ``min`` arithmetization dropping the duplicate from
    every cell's combine leaves each quantized cell value bit-identical —
    unlike the general implication cull, which can change Algorithm 5's
    numbers.  Deterministic: ties always keep the lowest row index.
    """
    return duplicate_row_keep_mask_blocks((matrix,))


def duplicate_row_keep_mask_blocks(
    blocks: Tuple[np.ndarray, ...]
) -> np.ndarray:
    """:func:`duplicate_row_keep_mask` over the virtual row-stack of
    ``blocks`` (same column count each) without materializing the stack —
    the delta recompile holds the old and appended outside rows as
    separate arrays and must not pay an O(rows × genes) copy to ask which
    appended rows are duplicates.
    """
    # Hash-based first-occurrence scan: one packed-row hash per row beats
    # np.unique's lexicographic row sort by an order of magnitude on wide
    # matrices, and byte-keyed set membership is exact (no collision
    # risk — equal keys mean equal rows).  Equal column counts give equal
    # packbits padding, so keys compare identically across blocks.
    seen = set()
    keeps = []
    for block in blocks:
        block = np.asarray(block, dtype=bool)
        keep = np.zeros(block.shape[0], dtype=bool)
        if block.shape[0]:
            packed = np.packbits(block, axis=1)
            for i in range(block.shape[0]):
                key = packed[i].tobytes()
                if key not in seen:
                    seen.add(key)
                    keep[i] = True
        keeps.append(keep)
    if not keeps:
        return np.zeros(0, dtype=bool)
    return np.concatenate(keeps)


def culling_ratio(original: BST, culled: BST) -> float:
    """Fraction of exclusion-list references removed by the cull."""
    before = original.space_cost()
    after = culled.space_cost()
    if before == 0:
        return 0.0
    return 1.0 - after / before
