"""Top-k covering rule group miner tests — exhaustiveness and protocol."""

import math
from itertools import combinations

import numpy as np
import pytest

from repro.baselines.topk import TopkMiner, mine_all_classes, mine_topk_rule_groups
from repro.evaluation.timing import Budget, BudgetExceeded
from repro.rules.groups import closure_of_rows

from conftest import random_relational


def brute_force_groups(ds, class_id, min_support):
    crows = ds.class_members(class_id)
    minsup = max(1, math.ceil(min_support * len(crows)))
    expected = {}
    for r in range(1, len(crows) + 1):
        for combo in combinations(crows, r):
            upper = closure_of_rows(ds, combo)
            if not upper:
                continue
            support = ds.support_of_itemset(upper)
            class_support = frozenset(
                x for x in support if ds.labels[x] == class_id
            )
            if len(class_support) >= minsup:
                expected[support] = (upper, class_support)
    return expected


class TestExhaustiveness:
    def test_all_closed_groups_found_with_large_k(self):
        """With unbounded k the miner must enumerate exactly the closed
        groups above the support cutoff (checked against brute force)."""
        rng = np.random.default_rng(71)
        for _ in range(12):
            ds = random_relational(rng, n_samples_range=(4, 9))
            for class_id in range(ds.n_classes):
                for min_support in (0.3, 0.6, 0.9):
                    expected = brute_force_groups(ds, class_id, min_support)
                    mined = TopkMiner(
                        ds, class_id, k=10**6, min_support=min_support
                    ).mine()
                    got = {
                        g.support_rows: (g.upper_bound, g.class_support)
                        for g in mined
                    }
                    assert got == expected

    def test_support_and_confidence_values(self, example):
        groups = mine_topk_rule_groups(example, 0, k=100, min_support=0.3)
        for group in groups:
            assert group.support == len(group.class_support)
            assert group.confidence == len(group.class_support) / len(
                group.support_rows
            )
            # Upper bound is the closure of its own support rows.
            assert group.upper_bound == closure_of_rows(
                example, group.support_rows
            )

    def test_section1_rule_group_found(self, example):
        """The {g1, g3} => Cancer pattern (support {s1, s2}, conf 1) must be
        among the mined groups."""
        groups = mine_topk_rule_groups(example, 0, k=100, min_support=0.3)
        g1 = example.item_names.index("g1")
        g3 = example.item_names.index("g3")
        match = [g for g in groups if {g1, g3} <= g.upper_bound]
        assert match and all(g.confidence == 1.0 for g in match)


class TestTopKProtocol:
    def test_covering_limits_per_row(self):
        """Every returned group must be in some row's top-k by confidence."""
        rng = np.random.default_rng(73)
        ds = random_relational(rng, n_samples_range=(6, 10))
        k = 2
        miner = TopkMiner(ds, 0, k=k, min_support=0.2)
        mined = miner.mine()
        all_groups = TopkMiner(ds, 0, k=10**6, min_support=0.2).mine()
        per_row_best = {}
        for row in ds.class_members(0):
            covering = sorted(
                (g for g in all_groups if row in g.class_support),
                key=lambda g: (-g.confidence, -g.support),
            )
            if len(covering) >= k:
                per_row_best[row] = covering[k - 1].confidence
        for group in mined:
            # The group covers some row whose kth-best confidence it matches
            # or beats.
            assert any(
                group.confidence >= per_row_best.get(row, 0.0) - 1e-12
                for row in group.class_support
            )

    def test_results_sorted_by_confidence(self, example):
        groups = mine_topk_rule_groups(example, 0, k=3, min_support=0.3)
        confs = [g.confidence for g in groups]
        assert confs == sorted(confs, reverse=True)

    def test_min_support_filters(self, example):
        high = mine_topk_rule_groups(example, 0, k=100, min_support=0.9)
        for group in high:
            assert group.support >= math.ceil(0.9 * 3)

    def test_invalid_parameters(self, example):
        with pytest.raises(ValueError):
            TopkMiner(example, 0, k=0)
        with pytest.raises(ValueError):
            TopkMiner(example, 0, min_support=0.0)

    def test_empty_class_returns_nothing(self, example):
        # Class ids beyond the data produce empty member lists via
        # mine_all_classes on a dataset subset.
        sub = example.subset([0, 1, 2])  # only Cancer samples remain
        groups = mine_topk_rule_groups(sub, 1, k=5)
        assert groups == []

    def test_budget_enforced(self, example):
        with pytest.raises(BudgetExceeded):
            TopkMiner(example, 0, k=10, budget=Budget(1e-9)).mine()

    def test_mine_all_classes(self, example):
        per_class = mine_all_classes(example, k=5, min_support=0.3)
        assert set(per_class) == {0, 1}
        assert per_class[0] and per_class[1]

    def test_rank_covering(self, example):
        miner = TopkMiner(example, 0, k=5, min_support=0.3)
        groups = miner.mine()
        ranking = miner.rank_covering(groups)
        for row, covering in ranking.items():
            for group in covering:
                assert row in group.class_support
            confs = [g.confidence for g in covering]
            assert confs == sorted(confs, reverse=True)
