"""Dataset I/O roundtrip tests."""

import numpy as np
import pytest

from repro.datasets.dataset import DatasetError, ExpressionMatrix
from repro.datasets.io import (
    load_expression_tsv,
    load_relational_json,
    save_expression_tsv,
    save_relational_json,
)


@pytest.fixture
def matrix():
    rng = np.random.default_rng(0)
    return ExpressionMatrix(
        gene_names=("g0", "g1", "g2"),
        values=rng.normal(size=(4, 3)),
        labels=(0, 0, 1, 1),
        class_names=("tumor", "normal"),
        sample_names=("a", "b", "c", "d"),
    )


class TestExpressionTsv:
    def test_roundtrip(self, matrix, tmp_path):
        path = tmp_path / "data.tsv"
        save_expression_tsv(matrix, path)
        loaded = load_expression_tsv(path)
        assert loaded.gene_names == matrix.gene_names
        assert loaded.labels == matrix.labels
        assert loaded.class_names == matrix.class_names
        assert loaded.sample_names == matrix.sample_names
        np.testing.assert_allclose(loaded.values, matrix.values, rtol=1e-5)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("nope\tnope\n")
        with pytest.raises(DatasetError):
            load_expression_tsv(path)

    def test_ragged_row(self, tmp_path):
        path = tmp_path / "ragged.tsv"
        path.write_text("sample\tclass\tg0\ns1\ta\t1.0\t2.0\n")
        with pytest.raises(DatasetError):
            load_expression_tsv(path)

    def test_duplicate_gene_names_rejected(self, tmp_path):
        path = tmp_path / "dup.tsv"
        path.write_text("sample\tclass\tg0\tg1\tg0\ns1\ta\t1\t2\t3\n")
        with pytest.raises(DatasetError, match="duplicate gene name.*g0"):
            load_expression_tsv(path)

    def test_unparsable_value_names_row_and_gene(self, tmp_path):
        path = tmp_path / "text.tsv"
        path.write_text("sample\tclass\tg0\tg1\ns1\ta\t1.0\toops\n")
        with pytest.raises(DatasetError, match=r"text\.tsv:2: gene g1"):
            load_expression_tsv(path)

    @pytest.mark.parametrize("bad", ["nan", "inf", "-inf"])
    def test_non_finite_value_rejected(self, bad, tmp_path):
        path = tmp_path / "nonfinite.tsv"
        path.write_text(f"sample\tclass\tg0\tg1\ns1\ta\t1.0\t{bad}\n")
        with pytest.raises(DatasetError, match=r"nonfinite\.tsv:2: gene g1"):
            load_expression_tsv(path)


class TestRelationalJson:
    def test_roundtrip(self, example, tmp_path):
        path = tmp_path / "rel.json"
        save_relational_json(example, path)
        loaded = load_relational_json(path)
        assert loaded == example

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(DatasetError):
            load_relational_json(path)

    def test_missing_field(self, tmp_path):
        path = tmp_path / "missing.json"
        path.write_text('{"item_names": []}')
        with pytest.raises(DatasetError):
            load_relational_json(path)

    def test_duplicate_item_names_rejected(self, tmp_path):
        path = tmp_path / "dupitems.json"
        path.write_text(
            '{"item_names": ["g1", "g1"], "class_names": ["a"],'
            ' "samples": [[0]], "labels": [0]}'
        )
        with pytest.raises(DatasetError, match="duplicate item name.*g1"):
            load_relational_json(path)

    def test_sample_label_count_mismatch(self, tmp_path):
        path = tmp_path / "mismatch.json"
        path.write_text(
            '{"item_names": ["g1"], "class_names": ["a"],'
            ' "samples": [[0], [0]], "labels": [0]}'
        )
        with pytest.raises(DatasetError, match="2 samples but 1 labels"):
            load_relational_json(path)
