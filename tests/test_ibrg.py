"""IBRG (Section 4.2) tests."""

from itertools import chain, combinations

import numpy as np
import pytest

from repro.rules.groups import RuleGroup
from repro.rules.ibrg import IBRG, materialize_ibrg, running_example_ibrg

from conftest import random_relational


class TestSection42Example:
    def test_support_s2_group(self):
        """The paper's example: the Cancer IBRG with support {s2} has upper
        bound {g1, g3, g6} and lower bounds {g1,g6} and {g3,g6}."""
        dataset, ibrg = running_example_ibrg()
        names = dataset.item_names
        upper = {names[i] for i in ibrg.upper_bound}
        assert upper == {"g1", "g3", "g6"}
        lowers = {frozenset(names[i] for i in lb) for lb in ibrg.lower_bounds}
        assert lowers == {frozenset({"g1", "g6"}), frozenset({"g3", "g6"})}

    def test_membership_matches_paper_rules(self):
        dataset, ibrg = running_example_ibrg()
        idx = {n: i for i, n in enumerate(dataset.item_names)}
        assert ibrg.contains({idx["g1"], idx["g6"]})
        assert ibrg.contains({idx["g3"], idx["g6"]})
        assert ibrg.contains({idx["g1"], idx["g3"], idx["g6"]})
        assert not ibrg.contains({idx["g6"]})       # supp {s2, s3, s5}
        assert not ibrg.contains({idx["g1"]})       # supp {s1, s2}
        assert not ibrg.contains({idx["g1"], idx["g2"]})  # not within upper

    def test_member_count(self):
        """{g1,g6}, {g3,g6}, {g1,g3,g6}: exactly three member antecedents."""
        _, ibrg = running_example_ibrg()
        assert ibrg.member_count() == 3

    def test_describe(self):
        dataset, ibrg = running_example_ibrg()
        text = ibrg.describe(dataset)
        assert "Cancer" in text and "g6" in text


def powerset(items):
    items = list(items)
    return chain.from_iterable(
        combinations(items, r) for r in range(1, len(items) + 1)
    )


class TestMembershipSemantics:
    def test_contains_iff_same_support(self):
        """An antecedent within the upper bound belongs to the group exactly
        when its support rows equal the group's (brute-force check)."""
        rng = np.random.default_rng(111)
        checked = 0
        while checked < 8:
            ds = random_relational(rng, n_samples_range=(4, 7), n_items_range=(3, 7))
            rows = ds.class_members(0)
            if not rows:
                continue
            group = RuleGroup.from_class_rows(ds, 0, rows[:2])
            if not group.upper_bound or len(group.upper_bound) > 8:
                continue
            ibrg = materialize_ibrg(ds, group, max_lower_bounds=10**6)
            class_rows = set(ds.class_members(0))
            for subset in powerset(sorted(group.upper_bound)):
                same_support = (
                    ds.support_of_itemset(subset) & class_rows
                    == set(group.class_support)
                )
                assert ibrg.contains(subset) == same_support, (subset,)
            checked += 1

    def test_member_count_matches_enumeration(self):
        rng = np.random.default_rng(113)
        checked = 0
        while checked < 8:
            ds = random_relational(rng, n_samples_range=(4, 7), n_items_range=(3, 7))
            rows = ds.class_members(0)
            if not rows:
                continue
            group = RuleGroup.from_class_rows(ds, 0, rows[:1])
            if not group.upper_bound or len(group.upper_bound) > 8:
                continue
            ibrg = materialize_ibrg(ds, group, max_lower_bounds=10**6)
            brute = sum(
                1 for s in powerset(sorted(group.upper_bound)) if ibrg.contains(s)
            )
            assert ibrg.member_count() == brute
            checked += 1
