"""Multi-tenant registry: hot swap, quotas, and the shared error surface."""

import inspect
import shutil
import threading

import numpy as np
import pytest

import repro.errors as errors_module
from repro.core.artifact import ArtifactCorrupt, ArtifactStale
from repro.core.classifier import BSTClassifier
from repro.errors import (
    ModelNotFound,
    NotSupportedError,
    QuotaExceeded,
    ReproError,
    ServiceClosed,
)
from repro.evaluation.timing import EngineCounters
from repro.serving import (
    ERROR_SURFACE,
    EXIT_CORRUPT,
    EXIT_ERROR,
    EXIT_OVERLOAD,
    EXIT_STALE,
    ModelRegistry,
    ServeConfig,
    error_body,
    exit_code,
    http_status,
)
from repro.testing import corrupt_artifact_member

Q = frozenset({0, 3, 4})


@pytest.fixture
def artifact(tmp_path, example):
    clf = BSTClassifier().fit(example)
    return clf.save(tmp_path / "model.npz")


@pytest.fixture
def registry():
    with ModelRegistry(counters=EngineCounters()) as reg:
        yield reg


class TestDeploy:
    def test_deploy_and_predict(self, registry, artifact, example):
        info = registry.deploy("exp", artifact)
        assert info.version == 1
        assert info.n_classes == example.n_classes
        assert info.fingerprint == example.fingerprint
        assert not info.supports_explain
        expected = BSTClassifier().fit(example).predict(Q)
        assert registry.predict("exp", Q) == expected

    def test_redeploy_bumps_version(self, registry, artifact):
        assert registry.deploy("exp", artifact).version == 1
        assert registry.deploy("exp", artifact).version == 2
        assert registry.model_info("exp").version == 2

    def test_unknown_model(self, registry, artifact):
        registry.deploy("exp", artifact)
        with pytest.raises(ModelNotFound, match="exp"):
            registry.predict("nope", Q)

    def test_bad_names_rejected(self, registry, artifact):
        for name in ("", "a/b", "a:predict"):
            with pytest.raises(ValueError):
                registry.deploy(name, artifact)

    def test_listing_and_membership(self, registry, artifact):
        registry.deploy("b", artifact)
        registry.deploy("a", artifact)
        assert [m.name for m in registry.models()] == ["a", "b"]
        assert len(registry) == 2
        assert "a" in registry and "zz" not in registry

    def test_undeploy_drains(self, registry, artifact):
        registry.deploy("exp", artifact)
        assert registry.undeploy("exp")
        assert not registry.undeploy("exp")
        with pytest.raises(ModelNotFound):
            registry.predict("exp", Q)

    def test_deploy_model_in_memory(self, registry, example):
        clf = BSTClassifier().fit(example)
        info = registry.deploy_model("mem", clf)
        assert info.artifact_path is None
        assert info.supports_explain
        assert registry.predict("mem", Q) == clf.predict(Q)

    def test_closed_registry_refuses(self, artifact):
        registry = ModelRegistry(counters=EngineCounters())
        registry.deploy("exp", artifact)
        registry.close()
        registry.close()  # idempotent
        assert registry.closed
        with pytest.raises(ServiceClosed):
            registry.predict("exp", Q)
        with pytest.raises(ServiceClosed):
            registry.deploy("late", artifact)

    def test_health_aggregates_slots(self, registry, artifact):
        registry.deploy("a", artifact)
        registry.deploy("b", artifact)
        health = registry.health()
        assert health.ready
        assert health.state == "serving"
        assert set(health.models) == {"a", "b"}
        assert all(h.ready for h in health.models.values())


class TestHotSwap:
    def test_swap_under_load_loses_nothing(self, tmp_path, example):
        # Hammer one slot from many threads while the main thread hot-swaps
        # it repeatedly.  The registry's retry-on-flip contract means every
        # submission is answered exactly once — no drops, no ServiceClosed
        # leaking to callers, no double answers.
        artifact = BSTClassifier().fit(example).save(tmp_path / "m.npz")
        counters = EngineCounters()
        registry = ModelRegistry(
            ServeConfig(max_batch=4, max_wait_ms=0.5),
            counters=counters,
        )
        registry.deploy("exp", artifact)
        expected = BSTClassifier().fit(example).predict(Q)
        n_threads, per_thread, n_swaps = 8, 25, 10
        answered = [0] * n_threads
        start = threading.Barrier(n_threads + 1)

        def call(slot):
            start.wait()
            for _ in range(per_thread):
                label = registry.predict("exp", Q, timeout=30)
                assert label == expected
                answered[slot] += 1

        threads = [
            threading.Thread(target=call, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        start.wait()
        try:
            for _ in range(n_swaps):
                registry.deploy("exp", artifact)
        finally:
            for t in threads:
                t.join()
            registry.close()
        assert sum(answered) == n_threads * per_thread
        snap = counters.snapshot()
        assert snap["registry_swaps"] == n_swaps
        assert snap["registry_requests"] == n_threads * per_thread
        # Every request the services accepted was answered exactly once.
        assert snap["service_requests"] == n_threads * per_thread

    def test_corrupt_swap_refused_old_model_serves_on(
        self, tmp_path, registry, artifact, example
    ):
        registry.deploy("exp", artifact)
        expected = registry.predict("exp", Q)
        # Build a corrupt replacement and try to swap it in.
        bad = tmp_path / "bad.npz"
        shutil.copy(artifact, bad)
        corrupt_artifact_member(bad, "meta_fingerprint.npy")
        with pytest.raises(ArtifactCorrupt):
            registry.deploy("exp", bad)
        # The refused swap must be a perfect no-op for the live slot.
        info = registry.model_info("exp")
        assert info.version == 1
        assert registry.predict("exp", Q) == expected
        assert registry.health().ready

    def test_stale_swap_refused(self, registry, artifact):
        registry.deploy("exp", artifact)
        with pytest.raises(ArtifactStale):
            registry.deploy("exp", artifact, expected_fingerprint="not-it")
        assert registry.model_info("exp").version == 1


class _Gated:
    """Blocks batch evaluation on an event so requests pile up in flight."""

    def __init__(self, inner):
        self.inner = inner
        self.dataset = inner.dataset
        self.gate = threading.Event()
        self.entered = threading.Semaphore(0)

    def classification_values_batch(self, queries):
        self.entered.release()
        self.gate.wait()
        return self.inner.classification_values_batch(queries)


class TestTenantQuota:
    def test_quota_sheds_excess_in_flight(self, example):
        clf = BSTClassifier().fit(example)
        gated = _Gated(clf)
        counters = EngineCounters()
        registry = ModelRegistry(
            ServeConfig(max_batch=1, max_wait_ms=0.0),
            tenant_quota=2,
            counters=counters,
        )
        registry.deploy_model("exp", gated)
        results = []

        def call():
            try:
                results.append(registry.predict("exp", Q, tenant="acme"))
            except QuotaExceeded as exc:
                results.append(exc)

        try:
            first = threading.Thread(target=call)
            first.start()
            assert gated.entered.acquire(timeout=5)  # one wedged in compute
            second = threading.Thread(target=call)
            second.start()
            # Wait for the second lease, then the third must bounce.
            deadline = 50
            while registry.tenants().get("acme", 0) < 2 and deadline:
                threading.Event().wait(0.01)
                deadline -= 1
            assert registry.tenants() == {"acme": 2}
            with pytest.raises(QuotaExceeded) as excinfo:
                registry.predict("exp", Q, tenant="acme")
            assert excinfo.value.tenant == "acme"
            # Anonymous and other tenants are unaffected by acme's pile-up.
            gated.gate.set()
            first.join()
            second.join()
        finally:
            gated.gate.set()
            registry.close()
        assert registry.tenants() == {}  # leases released
        assert counters.get("registry_quota_rejections") == 1
        assert sum(1 for r in results if isinstance(r, int)) == 2

    def test_anonymous_tenant_is_exempt(self, registry, example):
        clf = BSTClassifier().fit(example)
        quota_registry = ModelRegistry(
            tenant_quota=1, counters=EngineCounters()
        )
        try:
            quota_registry.deploy_model("exp", clf)
            for _ in range(4):  # far past the quota, sequentially and fine
                quota_registry.predict("exp", Q)
        finally:
            quota_registry.close()


class TestExplainRouting:
    def test_in_memory_model_explains(self, registry, example):
        clf = BSTClassifier().fit(example)
        registry.deploy_model("mem", clf)
        explanation = registry.explain("mem", Q, min_satisfaction=0.5)
        assert explanation.predicted == clf.predict(Q)
        assert explanation.evidence

    def test_artifact_deployment_refuses_explain(self, registry, artifact):
        registry.deploy("exp", artifact)
        with pytest.raises(NotSupportedError, match="artifact"):
            registry.explain("exp", Q)

    def test_item_names_surface(self, registry, example):
        clf = BSTClassifier().fit(example)
        registry.deploy_model("mem", clf)
        assert registry.item_names("mem") == tuple(example.item_names)


class TestErrorSurface:
    """Satellite: the exception tree maps 1:1 onto HTTP statuses and CLI
    exit codes — enumerated class by class, so adding an error type
    without deciding its surface fails here."""

    def test_table_is_exhaustive_over_the_exception_tree(self):
        classes = [
            obj
            for _, obj in inspect.getmembers(errors_module, inspect.isclass)
            if issubclass(obj, ReproError)
        ]
        assert len(classes) > 10  # the tree, not a stub
        for cls in classes:
            # Resolution is by MRO walk: every class must land on a row.
            resolved = next(
                (ERROR_SURFACE[c] for c in cls.__mro__ if c in ERROR_SURFACE),
                None,
            )
            assert resolved is not None, f"{cls.__name__} has no surface row"

    @pytest.mark.parametrize(
        "make,status,code",
        [
            (lambda: errors_module.QueryError("bad"), 400, EXIT_ERROR),
            (lambda: ModelNotFound("m", ("a",)), 404, EXIT_ERROR),
            (lambda: NotSupportedError("no"), 501, EXIT_ERROR),
            (
                lambda: errors_module.ServiceOverloaded(9, 8),
                429,
                EXIT_OVERLOAD,
            ),
            (lambda: QuotaExceeded("t", 2, 2), 429, EXIT_OVERLOAD),
            (lambda: errors_module.CircuitOpen(0.5), 503, EXIT_OVERLOAD),
            (lambda: ServiceClosed("gone"), 503, EXIT_OVERLOAD),
            (
                lambda: errors_module.DeadlineExceeded("late"),
                504,
                EXIT_OVERLOAD,
            ),
            (lambda: errors_module.WorkerCrashed("dead"), 500, EXIT_OVERLOAD),
            (lambda: errors_module.WorkerError("sick"), 500, EXIT_ERROR),
            (
                lambda: ArtifactCorrupt("m.npz", "bad crc"),
                500,
                EXIT_CORRUPT,
            ),
            (lambda: ArtifactStale("old"), 409, EXIT_STALE),
        ],
    )
    def test_status_and_exit_code_rows(self, make, status, code):
        exc = make()
        assert http_status(exc) == status
        assert exit_code(exc) == code
        body = error_body(exc)
        assert body["error"]["type"] == type(exc).__name__
        assert body["error"]["status"] == status
        assert body["error"]["message"]

    def test_exit_codes_are_distinct_and_documented(self):
        assert (EXIT_ERROR, EXIT_CORRUPT, EXIT_STALE, EXIT_OVERLOAD) == (
            2,
            3,
            4,
            5,
        )

    def test_unknown_exception_falls_back_to_500(self):
        assert http_status(RuntimeError("?")) == 500
        assert exit_code(RuntimeError("?")) == EXIT_ERROR

    def test_retry_after_rides_along(self):
        exc = errors_module.CircuitOpen(1.25)
        assert exc.retry_after == 1.25
        assert http_status(exc) == 503


class TestProcessPool:
    def test_pooled_deploy_serves_bit_identical_values(
        self, tmp_path, example
    ):
        clf = BSTClassifier().fit(example)
        artifact = clf.save(tmp_path / "m.npz")
        counters = EngineCounters()
        registry = ModelRegistry(counters=counters)
        try:
            info = registry.deploy(
                "exp", artifact, config=ServeConfig(workers=2)
            )
            assert info.workers == 2
            rng = np.random.default_rng(11)
            queries = [
                rng.random(example.n_items) < 0.4 for _ in range(12)
            ]
            served = np.stack(
                [
                    registry.classification_values("exp", q)
                    for q in queries
                ]
            )
        finally:
            registry.close()
        direct = clf.classification_values_batch(np.stack(queries))
        assert np.array_equal(served, direct)
