"""Packed-bitset kernel tests: randomized frozenset cross-checks and the
bit-identity equivalence suite.

Part 1 drives :class:`~repro.core.bitset.BitSet` /
:class:`~repro.core.bitset.BitMatrix` through hundreds of random universes
(including the empty universe, single-word, word-boundary and multi-word
sizes, plus all-ones and empty sets) and asserts every operation agrees
with the obvious frozenset/bool-array reference.

Part 2 embeds the historical frozenset implementations of the support-set
consumers (closure, support-of-itemset, the Algorithm 3/4 miners, the
exclusion accounting) and asserts the packed substrate reproduces their
outputs *bit-identically* — mined rule lists order included, explanation
and describe strings character for character, and predictions — on the
running example and a synthetic expression profile.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set, Tuple

import numpy as np
import pytest

from repro.baselines.charm import charm_closed_itemsets
from repro.core.bitset import (
    BitMatrix,
    BitSet,
    flush_kernel_counters,
    kernel_stats_snapshot,
)
from repro.core.classifier import BSTClassifier
from repro.core.explain import explain_classification
from repro.bst.mining import closure_bits, mine_mcmcbar, mine_mcmcbar_per_sample
from repro.bst.table import BST
from repro.datasets.dataset import RelationalDataset, running_example
from repro.datasets.discretize import EntropyDiscretizer
from repro.datasets.synthetic import generate_expression_data
from repro.evaluation.timing import EngineCounters
from repro.rules.car import CAR
from repro.rules.groups import closure_of_rows

from conftest import random_relational


# Universe sizes that exercise zero words, partial words, exact word
# boundaries, and multi-word tails.
EDGE_UNIVERSES = (0, 1, 2, 63, 64, 65, 127, 128, 129, 192, 300)


def _random_indices(rng: np.random.Generator, universe: int) -> FrozenSet[int]:
    if universe == 0:
        return frozenset()
    density = rng.uniform(0.0, 1.0)
    mask = rng.random(universe) < density
    return frozenset(int(i) for i in np.flatnonzero(mask))


def _universe(rng: np.random.Generator) -> int:
    if rng.random() < 0.3:
        return int(rng.choice(EDGE_UNIVERSES))
    return int(rng.integers(0, 260))


class TestBitSetRandomized:
    """500+ random (universe, set, set) trials against frozensets."""

    def test_binary_ops_match_frozenset(self):
        rng = np.random.default_rng(20260806)
        for trial in range(260):
            n = _universe(rng)
            fa, fb = _random_indices(rng, n), _random_indices(rng, n)
            a, b = BitSet.from_indices(n, fa), BitSet.from_indices(n, fb)
            full = frozenset(range(n))
            assert (a & b).to_frozenset() == fa & fb
            assert (a | b).to_frozenset() == fa | fb
            assert (a ^ b).to_frozenset() == fa ^ fb
            assert (a - b).to_frozenset() == fa - fb
            assert (~a).to_frozenset() == full - fa
            assert a.complement().to_frozenset() == full - fa
            assert a.count() == len(fa)
            assert len(b) == len(fb)
            assert bool(a) == bool(fa)
            assert a.issubset(b) == (fa <= fb)
            assert (a <= b) == (fa <= fb)
            assert (a < b) == (fa < fb)
            assert (a >= b) == (fa >= fb)
            assert (a > b) == (fa > fb)
            assert a.isdisjoint(b) == fa.isdisjoint(fb)
            assert a.intersection_count(b) == len(fa & fb)
            assert (a == b) == (fa == fb)
            if fa == fb:
                assert hash(a) == hash(b)

    def test_members_iteration_and_contains(self):
        rng = np.random.default_rng(7)
        for trial in range(130):
            n = _universe(rng)
            fa = _random_indices(rng, n)
            a = BitSet.from_indices(n, fa)
            assert a.members() == tuple(sorted(fa))
            assert list(a) == sorted(fa)
            assert a.to_frozenset() == fa
            assert np.array_equal(a.members_array(), np.array(sorted(fa)))
            probe = set(rng.integers(0, max(n, 1), 5).tolist()) | set(fa)
            for index in probe:
                if index < n:
                    assert (index in a) == (index in fa)
            bools = a.to_bool()
            assert bools.shape == (n,)
            assert frozenset(np.flatnonzero(bools).tolist()) == fa
            assert BitSet.from_bool(bools) == a

    def test_constructors_match_reference(self):
        rng = np.random.default_rng(99)
        for trial in range(110):
            n = _universe(rng)
            assert BitSet.empty(n).to_frozenset() == frozenset()
            assert BitSet.full(n).to_frozenset() == frozenset(range(n))
            assert BitSet.full(n).count() == n
            stop = int(rng.integers(0, n + 1))
            assert BitSet.from_range(n, stop).to_frozenset() == frozenset(
                range(stop)
            )
            if n:
                index = int(rng.integers(0, n))
                single = BitSet.single(n, index)
                assert single.to_frozenset() == frozenset((index,))
                grown = BitSet.empty(n).add(index)
                assert grown == single
                fa = _random_indices(rng, n)
                a = BitSet.from_indices(n, fa)
                assert a.add(index).to_frozenset() == fa | {index}

    def test_empty_universe_edge_cases(self):
        zero = BitSet.empty(0)
        assert zero.to_frozenset() == frozenset()
        assert zero.count() == 0 and not zero
        assert (~zero) == zero == BitSet.full(0)
        assert zero.issubset(zero) and zero.isdisjoint(zero)
        assert BitMatrix.from_bool(np.zeros((0, 0), dtype=bool)).n_rows == 0

    def test_all_ones_edge_cases(self):
        for n in EDGE_UNIVERSES:
            ones = BitSet.full(n)
            assert (~ones).to_frozenset() == frozenset()
            assert (ones & ones) == ones and (ones | ones) == ones
            assert (ones ^ ones) == BitSet.empty(n)
            assert ones.count() == n
            # Tail-bit invariant: complements never leak bits past n.
            assert (~BitSet.empty(n)).count() == n

    def test_universe_mismatch_rejected(self):
        a, b = BitSet.empty(64), BitSet.empty(65)
        with pytest.raises(ValueError):
            _ = a & b
        with pytest.raises(ValueError):
            a.issubset(b)


class TestBitMatrixRandomized:
    def test_roundtrip_rows_and_reductions(self):
        rng = np.random.default_rng(1234)
        for trial in range(90):
            n_rows = int(rng.integers(0, 12))
            n_cols = _universe(rng)
            dense = rng.random((n_rows, n_cols)) < rng.uniform(0.2, 0.9)
            matrix = BitMatrix.from_bool(dense)
            assert matrix.n_rows == n_rows and matrix.n_cols == n_cols
            assert np.array_equal(matrix.to_bool(), dense)
            for i in range(n_rows):
                assert matrix.row(i).to_frozenset() == frozenset(
                    np.flatnonzero(dense[i]).tolist()
                )
            assert np.array_equal(
                matrix.row_counts(), dense.sum(axis=1).astype(np.int64)
            )
            assert np.array_equal(matrix.transpose().to_bool(), dense.T)

            selection = [
                i for i in range(n_rows) if rng.random() < 0.5
            ]
            expected_and = frozenset(range(n_cols))
            expected_or: FrozenSet[int] = frozenset()
            for i in selection:
                row = frozenset(np.flatnonzero(dense[i]).tolist())
                expected_and = expected_and & row
                expected_or = expected_or | row
            assert matrix.reduce_and(selection).to_frozenset() == expected_and
            assert matrix.reduce_or(selection).to_frozenset() == expected_or
            # BitSet selections reduce identically to index lists.
            picked = BitSet.from_indices(n_rows, selection)
            assert matrix.reduce_and(picked).to_frozenset() == expected_and

    def test_reduce_and_empty_selection_is_intersection_identity(self):
        matrix = BitMatrix.from_bool(np.zeros((3, 70), dtype=bool))
        assert matrix.reduce_and([]) == BitSet.full(70)
        assert matrix.reduce_or([]) == BitSet.empty(70)

    def test_from_sets_matches_from_bool(self):
        rng = np.random.default_rng(55)
        for trial in range(40):
            n_cols = _universe(rng)
            sets = [
                _random_indices(rng, n_cols) for _ in range(int(rng.integers(0, 7)))
            ]
            dense = np.zeros((len(sets), n_cols), dtype=bool)
            for i, items in enumerate(sets):
                dense[i, sorted(items)] = True
            assert np.array_equal(
                BitMatrix.from_sets(sets, n_cols).to_bool(), dense
            )


class TestKernelCounters:
    def test_ops_are_tallied_and_flushed(self):
        flush_kernel_counters(EngineCounters())  # drain prior state
        a = BitSet.from_indices(70, (1, 64))
        b = BitSet.from_indices(70, (1, 5))
        _ = (a & b).count()
        snap = kernel_stats_snapshot()
        assert snap["bitset_set_ops"] >= 1
        assert snap["bitset_popcounts"] >= 1
        sink = EngineCounters()
        flush_kernel_counters(sink)
        assert sink.get("bitset_set_ops") >= 1
        assert kernel_stats_snapshot()["bitset_set_ops"] == 0


# ----------------------------------------------------------------------
# Part 2: bit-identity against the historical frozenset implementation
# ----------------------------------------------------------------------


def _ref_closure(bst: BST, support: FrozenSet[int]) -> FrozenSet[int]:
    """The pre-bitset closure: pairwise frozenset intersection."""
    ds = bst.dataset
    result: Optional[FrozenSet[int]] = None
    for s in support:
        items = ds.samples[s]
        result = items if result is None else result & items
        if not result:
            break
    return result if result is not None else frozenset()


def _ref_excluded_count(bst: BST, car_items: FrozenSet[int]) -> int:
    ds = bst.dataset
    return sum(1 for h in bst.outside if car_items <= ds.samples[h])


def _ref_support_of_itemset(
    dataset: RelationalDataset, itemset
) -> FrozenSet[int]:
    return frozenset(
        i
        for i in range(dataset.n_samples)
        if set(itemset) <= dataset.samples[i]
    )


def _ref_order_key(
    bst: BST, support: FrozenSet[int], break_ties_by_confidence: bool
) -> Tuple:
    if break_ties_by_confidence:
        excluded = _ref_excluded_count(bst, _ref_closure(bst, support))
        return (-len(support), excluded, tuple(sorted(support)))
    return (-len(support), tuple(sorted(support)))


def _ref_mine_mcmcbar(
    bst: BST,
    k: int,
    break_ties_by_confidence: bool = False,
    must_contain: Optional[int] = None,
) -> List[Tuple[FrozenSet[int], int, FrozenSet[int]]]:
    """The historical frozenset Algorithm 3, emitting result tuples."""
    if k <= 0:
        return []

    def admissible(support: FrozenSet[int]) -> bool:
        if not support:
            return False
        if must_contain is not None and must_contain not in support:
            return False
        return True

    candidates: Set[FrozenSet[int]] = set()
    for gene in bst.nonblank_genes():
        support = bst.row_support(gene)
        if admissible(support):
            candidates.add(support)

    rules: List[Tuple[FrozenSet[int], int, FrozenSet[int]]] = []
    rule_supports: List[FrozenSet[int]] = []
    emitted: Set[FrozenSet[int]] = set()
    while candidates and len(rules) < k:
        best = max(len(s) for s in candidates)
        batch = sorted(
            (s for s in candidates if len(s) == best),
            key=lambda s: _ref_order_key(bst, s, break_ties_by_confidence),
        )
        for support in batch:
            if len(rules) >= k:
                break
            rules.append((_ref_closure(bst, support), bst.class_id, support))
            rule_supports.append(support)
            emitted.add(support)
        new_supports: Set[FrozenSet[int]] = set()
        for s1 in batch:
            for s2 in rule_supports:
                meet = s1 & s2
                if admissible(meet) and meet not in emitted:
                    new_supports.add(meet)
        candidates = {s for s in candidates if s not in emitted} | new_supports
    return rules


def _ref_mine_per_sample(
    bst: BST, k: int
) -> List[Tuple[FrozenSet[int], int, FrozenSet[int]]]:
    merged = {}
    for c in bst.columns:
        for rule in _ref_mine_mcmcbar(bst, k, must_contain=c):
            merged.setdefault(rule[2], rule)
    return sorted(
        merged.values(), key=lambda r: (-len(r[2]), tuple(sorted(r[2])))
    )


def _synthetic_relational(seed: int = 0) -> RelationalDataset:
    from repro.datasets.profiles import DatasetProfile

    profile = DatasetProfile(
        name="EQ",
        long_name="Equivalence synthetic",
        n_genes=50,
        class_labels=("pos", "neg"),
        class_counts=(10, 9),
        given_training=(6, 5),
        informative_fraction=0.3,
        effect_size=2.0,
    )
    data = generate_expression_data(profile, seed=seed)
    return EntropyDiscretizer().fit(data).transform(data)


@pytest.fixture(scope="module")
def equivalence_datasets():
    return [running_example(), _synthetic_relational()]


class TestFrozensetEquivalence:
    """The ISSUE acceptance gate: packed substrate == frozenset reference,
    bit for bit, on the running example and a synthetic profile."""

    def test_support_and_closure_identical(self, equivalence_datasets):
        for ds in equivalence_datasets:
            for i in range(ds.n_samples):
                itemset = ds.samples[i]
                assert ds.support_of_itemset(itemset) == _ref_support_of_itemset(
                    ds, itemset
                )
            assert ds.support_of_itemset(()) == frozenset(range(ds.n_samples))
            rows = frozenset(range(0, ds.n_samples, 2))
            reference = None
            for r in rows:
                reference = (
                    ds.samples[r] if reference is None else reference & ds.samples[r]
                )
            assert closure_of_rows(ds, rows) == (reference or frozenset())
            assert closure_of_rows(ds, frozenset()) == frozenset()

    def test_car_support_confidence_identical(self, equivalence_datasets):
        for ds in equivalence_datasets:
            for class_id in range(ds.n_classes):
                for i in list(ds.class_members(class_id))[:4]:
                    car = CAR(frozenset(list(ds.samples[i])[:3]), class_id)
                    matching = _ref_support_of_itemset(ds, car.antecedent)
                    members = frozenset(ds.class_members(class_id))
                    assert car.all_matching(ds) == matching
                    assert car.support_set(ds) == matching & members
                    assert car.support(ds) == len(matching & members)
                    expected_conf = (
                        len(matching & members) / len(matching)
                        if matching
                        else 0.0
                    )
                    assert car.confidence(ds) == pytest.approx(expected_conf)

    def test_mined_rule_lists_identical_order_included(
        self, equivalence_datasets
    ):
        for ds in equivalence_datasets:
            for class_id in range(ds.n_classes):
                bst = BST.build(ds, class_id)
                for tie_break in (False, True):
                    mined = mine_mcmcbar(
                        bst, k=8, break_ties_by_confidence=tie_break
                    )
                    reference = _ref_mine_mcmcbar(
                        bst, k=8, break_ties_by_confidence=tie_break
                    )
                    assert [
                        (r.car_items, r.consequent, r.support) for r in mined
                    ] == reference
                mined_ps = mine_mcmcbar_per_sample(bst, k=3)
                assert [
                    (r.car_items, r.consequent, r.support) for r in mined_ps
                ] == _ref_mine_per_sample(bst, k=3)

    def test_closure_bits_matches_reference(self, equivalence_datasets):
        rng = np.random.default_rng(3)
        for ds in equivalence_datasets:
            bst = BST.build(ds, 0)
            for trial in range(20):
                support = frozenset(
                    int(i)
                    for i in np.flatnonzero(rng.random(ds.n_samples) < 0.4)
                )
                packed = BitSet.from_indices(ds.n_samples, support)
                assert closure_bits(bst, packed).to_frozenset() == _ref_closure(
                    bst, support
                )

    def test_describe_and_explanation_strings_identical(
        self, equivalence_datasets
    ):
        for ds in equivalence_datasets:
            for class_id in range(ds.n_classes):
                bst = BST.build(ds, class_id)
                for rule in mine_mcmcbar(bst, k=4):
                    # The string reference rebuilt from pure frozensets.
                    items = ",".join(
                        ds.item_names[i] for i in sorted(rule.car_items)
                    )
                    supp = ",".join(
                        ds.sample_name(s) for s in sorted(rule.support)
                    )
                    expected = (
                        f"{{{items}}}+exclusions => "
                        f"{ds.class_names[rule.consequent]}"
                        f" (support {{{supp}}})"
                    )
                    assert rule.describe(bst) == expected
                    assert rule.excluded_outside(bst) == tuple(
                        h
                        for h in bst.outside
                        if rule.car_items <= ds.samples[h]
                    )

    def test_predictions_identical_across_engines(self, equivalence_datasets):
        # Both engines walk the same bitset-backed BSTs; the reference
        # engine evaluates cell rules sample by sample with plain python
        # sets, so agreement pins the packed path to the scalar one.
        for ds in equivalence_datasets:
            fast = BSTClassifier(engine="fast").fit(ds)
            slow = BSTClassifier(engine="reference").fit(ds)
            queries = [ds.samples[i] for i in range(ds.n_samples)]
            assert np.array_equal(
                fast.predict_batch(queries), slow.predict_batch(queries)
            )
            explanation = explain_classification(fast, queries[0])
            assert explanation.predicted == int(
                np.argmax(explanation.class_values)
            )

    def test_charm_closures_are_exact(self, equivalence_datasets):
        for ds in equivalence_datasets:
            transactions = [ds.samples[i] for i in range(ds.n_samples)]
            closed = charm_closed_itemsets(transactions, 2)
            for itemset, count in closed.items():
                tidset = _ref_support_of_itemset(ds, itemset)
                assert len(tidset) == count
                # Closed: intersecting the supporting transactions gives the
                # itemset back (frozenset arithmetic only).
                closure = None
                for t in tidset:
                    closure = (
                        transactions[t]
                        if closure is None
                        else closure & transactions[t]
                    )
                assert closure == itemset


class TestRandomDatasetEquivalence:
    """Random relational datasets: the miner agrees with the embedded
    frozenset reference end to end (beyond the two fixed profiles)."""

    def test_random_mining_equivalence(self):
        rng = np.random.default_rng(42)
        for trial in range(12):
            ds = random_relational(rng)
            for class_id in range(ds.n_classes):
                bst = BST.build(ds, class_id)
                mined = mine_mcmcbar(bst, k=6)
                assert [
                    (r.car_items, r.consequent, r.support) for r in mined
                ] == _ref_mine_mcmcbar(bst, k=6)


class TestSwarPopcount:
    """The numpy < 2 SWAR fallback stays correct and forceable on modern
    numpy via the REPRO_FORCE_SWAR env toggle."""

    def test_swar_matches_native(self):
        from repro.core.bitset import (
            _native_popcount_words,
            _swar_popcount_words,
        )

        rng = np.random.default_rng(7)
        cases = [
            np.zeros(4, dtype=np.uint64),
            np.full(3, 0xFFFFFFFFFFFFFFFF, dtype=np.uint64),
            np.array([1, 2, 4, 8, 0x8000000000000000], dtype=np.uint64),
        ] + [
            rng.integers(0, 2**64, size=size, dtype=np.uint64)
            for size in (1, 7, 64, 1000)
        ]
        for words in cases:
            assert _swar_popcount_words(words) == _native_popcount_words(
                words
            )
            # The SWAR path must not mutate its input.
            assert _swar_popcount_words(words.copy()) == _swar_popcount_words(
                words
            )

    def test_force_swar_env_toggle(self):
        import subprocess
        import sys

        script = (
            "from repro.core import bitset\n"
            "assert bitset._popcount_words is bitset._swar_popcount_words\n"
            "b = bitset.BitSet.from_indices(130, {1, 5, 63, 64})\n"
            "assert len(b) == 4\n"
            "print('forced-swar-ok')\n"
        )
        import os

        env = dict(os.environ, REPRO_FORCE_SWAR="1")
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
        )
        assert result.returncode == 0, result.stderr
        assert "forced-swar-ok" in result.stdout

    def test_default_prefers_native_when_available(self):
        from repro.core import bitset

        if hasattr(np, "bitwise_count") and not bitset._FORCE_SWAR:
            assert bitset._popcount_words is bitset._native_popcount_words
