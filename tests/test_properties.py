"""Cross-module property tests (hypothesis) on the paper's formal claims."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bst.row_bar import gene_row_bar
from repro.bst.table import BST
from repro.datasets.dataset import RelationalDataset
from repro.rules.bar import BAR
from repro.rules.car import CAR
from repro.rules.boolexpr import conjunction


@st.composite
def datasets(draw, max_samples=9, max_items=10):
    n = draw(st.integers(min_value=2, max_value=max_samples))
    m = draw(st.integers(min_value=1, max_value=max_items))
    rows = [
        frozenset(j for j in range(m) if draw(st.booleans())) for _ in range(n)
    ]
    labels = [draw(st.integers(min_value=0, max_value=1)) for _ in range(n)]
    if len(set(labels)) < 2:
        labels[0] = 0
        labels[-1] = 1
    return RelationalDataset(
        item_names=tuple(f"g{j}" for j in range(m)),
        class_names=("c0", "c1"),
        samples=tuple(rows),
        labels=tuple(labels),
    )


class TestBarCarCoincidence:
    """Section 2.1: for pure conjunctions the generalized BAR support and
    confidence coincide with the CAR definitions."""

    @given(datasets(), st.data())
    @settings(max_examples=120, deadline=None)
    def test_support_and_confidence_agree(self, ds, data):
        m = ds.n_items
        size = data.draw(st.integers(min_value=0, max_value=min(3, m)))
        items = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=m - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        consequent = data.draw(st.integers(min_value=0, max_value=1))
        car = CAR(frozenset(items), consequent)
        bar = BAR(conjunction(sorted(items)), consequent)
        assert bar.support_set(ds) == car.support_set(ds)
        assert bar.confidence(ds) == pytest.approx(car.confidence(ds))


class TestBstSoundness:
    @given(datasets())
    @settings(max_examples=80, deadline=None)
    def test_cell_rules_never_match_outside(self, ds):
        """No atomic cell rule may be satisfied by any outside sample —
        cell rules are 100% confident regardless of duplicates."""
        for class_id in (0, 1):
            bst = BST.build(ds, class_id)
            for col in bst.columns:
                for cell in bst.column_cells(col):
                    for h in bst.outside:
                        assert not cell.is_satisfied(ds.samples[h])

    @given(datasets())
    @settings(max_examples=80, deadline=None)
    def test_row_bar_support_equals_empirical(self, ds):
        """Gene-row BARs evaluate true on exactly their declared class
        support (when no cross-class duplicate rows confound the clauses)."""
        inside = {ds.samples[i] for i in ds.class_members(0)}
        outside = {ds.samples[i] for i in ds.class_members(1)}
        if inside & outside:
            return
        bst = BST.build(ds, 0)
        for gene in sorted(bst.nonblank_genes()):
            rule = gene_row_bar(bst, gene)
            assert rule.to_bar(bst).support_set(ds) == rule.support


class TestClassifierTotality:
    @given(datasets(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_prediction_is_always_a_valid_class(self, ds, data):
        from repro.core.classifier import BSTClassifier

        clf = BSTClassifier().fit(ds)
        query = frozenset(
            j for j in range(ds.n_items) if data.draw(st.booleans())
        )
        assert clf.predict(query) in range(ds.n_classes)
