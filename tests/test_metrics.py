"""Metric tests."""

import numpy as np
import pytest

from repro.evaluation.metrics import (
    accuracy,
    confusion_matrix,
    error_direction,
    mean_accuracy,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([0, 1, 1], [0, 1, 1]) == 1.0

    def test_half(self):
        assert accuracy([0, 0], [0, 1]) == 0.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            accuracy([0], [0, 1])

    def test_empty(self):
        with pytest.raises(ValueError):
            accuracy([], [])


class TestConfusion:
    def test_matrix(self):
        mat = confusion_matrix([0, 1, 1, 0], [0, 1, 0, 0], 2)
        assert mat[0, 0] == 2  # actual 0 predicted 0
        assert mat[0, 1] == 1  # actual 0 predicted 1
        assert mat[1, 1] == 1

    def test_row_sums_are_class_counts(self):
        preds = [0, 1, 2, 0, 1]
        labels = [0, 0, 2, 2, 1]
        mat = confusion_matrix(preds, labels, 3)
        assert mat.sum(axis=1).tolist() == [2, 1, 2]


class TestErrorDirection:
    def test_one_directional(self):
        """The Section 6.1 observation: every BSTC ALL/AML error mistook a
        class-0 sample for class 1."""
        direction = error_direction([1, 1, 1, 1], [0, 0, 1, 1])
        assert direction.one_directional
        assert direction.mistaken_as == (((0, 1, 2)),)

    def test_mixed_directions(self):
        direction = error_direction([1, 0], [0, 1])
        assert not direction.one_directional

    def test_no_errors(self):
        assert error_direction([0, 1], [0, 1]).one_directional


class TestMeanAccuracy:
    def test_mean(self):
        assert mean_accuracy([0.5, 1.0]) == 0.75

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_accuracy([])
