"""Unit tests for the relational/continuous data models."""

import numpy as np
import pytest

from repro.datasets.dataset import (
    DatasetError,
    ExpressionMatrix,
    RelationalDataset,
    running_example,
)


class TestRunningExample:
    def test_shape(self, example):
        assert example.n_samples == 5
        assert example.n_items == 6
        assert example.n_classes == 2

    def test_class_membership(self, example):
        assert example.class_members(0) == (0, 1, 2)
        assert example.class_members(1) == (3, 4)

    def test_outside_members(self, example):
        assert example.outside_members(0) == (3, 4)

    def test_sample_contents_match_table1(self, example):
        names = example.item_names
        s1 = {names[i] for i in example.samples[0]}
        assert s1 == {"g1", "g2", "g3", "g5"}
        s5 = {names[i] for i in example.samples[4]}
        assert s5 == {"g3", "g4", "g5", "g6"}

    def test_class_sizes(self, example):
        assert example.class_sizes() == (3, 2)

    def test_majority_class(self, example):
        assert example.majority_class() == 0


class TestValidation:
    def test_label_count_mismatch(self):
        with pytest.raises(DatasetError):
            RelationalDataset(("a",), ("x",), (frozenset(),), (0, 0))

    def test_unknown_item(self):
        with pytest.raises(DatasetError):
            RelationalDataset(("a",), ("x",), (frozenset({5}),), (0,))

    def test_unknown_class(self):
        with pytest.raises(DatasetError):
            RelationalDataset(("a",), ("x",), (frozenset(),), (3,))

    def test_sample_names_length(self):
        with pytest.raises(DatasetError):
            RelationalDataset(
                ("a",), ("x",), (frozenset(),), (0,), sample_names=("s1", "s2")
            )


class TestBoolMatrix:
    def test_roundtrip(self, example):
        rebuilt = RelationalDataset.from_bool_matrix(
            example.bool_matrix,
            example.labels,
            item_names=example.item_names,
            class_names=example.class_names,
        )
        assert rebuilt.samples == example.samples

    def test_matrix_values(self, example):
        mat = example.bool_matrix
        assert mat.shape == (5, 6)
        assert mat[0, 0] and not mat[0, 3]  # s1 expresses g1, not g4

    def test_from_matrix_rejects_1d(self):
        with pytest.raises(DatasetError):
            RelationalDataset.from_bool_matrix(np.zeros(4), [0])


class TestSubset:
    def test_subset_keeps_order(self, example):
        sub = example.subset([2, 0])
        assert sub.labels == (0, 0)
        assert sub.samples[0] == example.samples[2]
        assert sub.sample_names == ("s3", "s1")

    def test_support_of_itemset(self, example):
        # g1, g3 -> cancer samples s1, s2 only (the Section 1 example rule).
        assert example.support_of_itemset({0, 2}) == {0, 1}


class TestExpressionMatrix:
    def test_validation_rows(self):
        with pytest.raises(DatasetError):
            ExpressionMatrix(("g",), np.zeros((2, 1)), (0,), ("x",))

    def test_validation_columns(self):
        with pytest.raises(DatasetError):
            ExpressionMatrix(("g", "h"), np.zeros((1, 1)), (0,), ("x",))

    def test_subset_and_select(self):
        data = ExpressionMatrix(
            ("g0", "g1", "g2"),
            np.arange(12).reshape(4, 3).astype(float),
            (0, 0, 1, 1),
            ("a", "b"),
        )
        sub = data.subset([1, 3])
        assert sub.labels == (0, 1)
        assert sub.values[0, 0] == 3.0
        sel = data.select_genes([2, 0])
        assert sel.gene_names == ("g2", "g0")
        assert sel.values[0].tolist() == [2.0, 0.0]

    def test_class_helpers(self):
        data = ExpressionMatrix(
            ("g",), np.zeros((3, 1)), (0, 1, 1), ("a", "b")
        )
        assert data.class_sizes() == (1, 2)
        assert data.class_members(1) == (1, 2)
