"""Process-level supervision: ready files, crash restart with the
last-known-good artifact set, restart-budget escalation, and drain.

The supervised tests boot the real ``python -m repro.cli serve`` child
through :class:`~repro.serving.GatewaySupervisor` — the same stack the
kill-chaos smoke and CI exercise — so they are marked ``faults`` like
the rest of the recovery matrix.  The state-file and command-assembly
tests are pure and stay in tier 1.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.classifier import BSTClassifier
from repro.datasets.dataset import running_example
from repro.errors import RestartBudgetExhausted, SupervisorError
from repro.evaluation.timing import EngineCounters
from repro.serving import (
    GatewayServer,
    GatewaySupervisor,
    ModelRegistry,
    gateway_env,
    read_state_file,
    serve_command,
    write_state_file,
)

Q_ITEMS = [0, 3, 4]


def _free_port() -> int:
    import socket

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _request(url, body=None, timeout=10.0):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _admin_post(url, body, token, timeout=30.0):
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode(),
        headers={
            "Content-Type": "application/json",
            "Authorization": f"Bearer {token}",
        },
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    workdir = tmp_path_factory.mktemp("supervised")
    classifier = BSTClassifier().fit(running_example())
    return classifier.save(workdir / "model.npz")


def _supervised(tmp_path, artifact, **kwargs):
    ready = tmp_path / "gateway.ready"
    state = tmp_path / "state.json"
    command = serve_command(
        {"exp": artifact},
        port=_free_port(),
        ready_file=ready,
        state_file=state,
        admin_token="chaos-admin",
    )
    supervisor = GatewaySupervisor(
        command, ready_file=ready, env=gateway_env(), **kwargs
    )
    return supervisor, ready, state


def _await_state(supervisor, predicate, deadline_s=60.0):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if predicate(supervisor):
            return
        time.sleep(0.05)
    pytest.fail(
        f"supervisor stuck in state={supervisor.state!r}"
        f" restarts={supervisor.restarts}"
    )


# ----------------------------------------------------------------------
# State file and command assembly (pure, tier 1)
# ----------------------------------------------------------------------


class TestStateFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "state.json"
        write_state_file({"b": "/art/b.npz", "a": "/art/a.npz"}, path)
        assert read_state_file(path) == {
            "a": "/art/a.npz",
            "b": "/art/b.npz",
        }

    def test_missing_file_is_none(self, tmp_path):
        assert read_state_file(tmp_path / "nope.json") is None

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text(
            json.dumps({"schema": "repro.serve-state/999", "models": {}})
        )
        with pytest.raises(SupervisorError, match="schema"):
            read_state_file(path)

    def test_malformed_raises(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text("not json")
        with pytest.raises(SupervisorError, match="unreadable"):
            read_state_file(path)
        path.write_text(
            json.dumps(
                {"schema": "repro.serve-state/1", "models": {"a": 3}}
            )
        )
        with pytest.raises(SupervisorError, match="models"):
            read_state_file(path)


class TestServeCommand:
    def test_requires_fixed_port(self, tmp_path):
        with pytest.raises(SupervisorError, match="fixed port"):
            serve_command(
                {"m": "a.npz"}, port=0, ready_file=tmp_path / "r"
            )

    def test_assembles_full_argv(self, tmp_path):
        command = serve_command(
            {"b": "b.npz", "a": "a.npz"},
            port=8123,
            ready_file=tmp_path / "ready",
            state_file=tmp_path / "state.json",
            admin_token="tok",
            extra_args=("--workers", "2"),
        )
        text = " ".join(command)
        assert "--model a=a.npz --model b=b.npz" in text  # sorted
        assert "--port 8123" in text
        assert "--ready-file" in text
        assert "--state-file" in text
        assert "--admin-token tok" in text
        assert text.endswith("--workers 2")

    def test_validates_knobs(self, tmp_path):
        command = ["true"]
        with pytest.raises(ValueError):
            GatewaySupervisor(
                command, ready_file=tmp_path / "r", max_restarts=-1
            )
        with pytest.raises(ValueError):
            GatewaySupervisor(
                command, ready_file=tmp_path / "r", probe_failures=0
            )


# ----------------------------------------------------------------------
# Supervised lifecycle against the real serve child
# ----------------------------------------------------------------------


class TestSupervisedLifecycle:
    def test_ready_file_predict_and_clean_stop(self, tmp_path, artifact):
        supervisor, ready, _ = _supervised(tmp_path, artifact)
        with supervisor:
            assert ready.exists()
            assert supervisor.url == ready.read_text().strip()
            assert supervisor.state == "serving"
            status, payload = _request(
                f"{supervisor.url}/v1/models/exp:predict",
                {"items": Q_ITEMS},
            )
            assert status == 200
            assert "prediction" in payload
        assert supervisor.stop() == 0  # idempotent after __exit__
        assert supervisor.state == "stopped"
        assert supervisor.restarts == 0
        # The child removed its readiness file on drain: readiness is
        # revoked before the socket closes, never after.
        assert not ready.exists()


@pytest.mark.faults
class TestCrashRecovery:
    def test_sigkill_restarts_and_recovers(self, tmp_path, artifact):
        supervisor, _, _ = _supervised(tmp_path, artifact)
        with supervisor:
            url = supervisor.url
            status, _ = _request(
                f"{url}/v1/models/exp:predict", {"items": Q_ITEMS}
            )
            assert status == 200
            supervisor.kill()
            _await_state(
                supervisor,
                lambda s: s.restarts >= 1 and s.state == "serving",
            )
            # Same address after the restart: clients keep their URL.
            assert supervisor.url == url
            status, payload = _request(
                f"{url}/v1/models/exp:predict", {"items": Q_ITEMS}
            )
            assert status == 200
            assert "prediction" in payload
            assert supervisor.restarts == 1

    def test_admin_deploy_survives_restart(self, tmp_path, artifact):
        supervisor, _, state = _supervised(tmp_path, artifact)
        with supervisor:
            url = supervisor.url
            status, payload = _admin_post(
                f"{url}/admin/v1/models/extra:deploy",
                {"artifact": str(artifact)},
                "chaos-admin",
            )
            assert status == 200, payload
            # The deploy was persisted as last-known-good ...
            assert read_state_file(state) == {
                "exp": str(artifact),
                "extra": str(artifact),
            }
            supervisor.kill()
            _await_state(
                supervisor,
                lambda s: s.restarts >= 1 and s.state == "serving",
            )
            # ... and the restarted child reloaded it: the admin-plane
            # deploy outlives the process that accepted it.
            status, payload = _request(f"{url}/v1/models/extra")
            assert status == 200
            assert payload["name"] == "extra"
            status, _ = _request(
                f"{url}/v1/models/extra:predict", {"items": Q_ITEMS}
            )
            assert status == 200

    def test_restart_budget_escalates(self, tmp_path, artifact):
        supervisor, _, _ = _supervised(tmp_path, artifact, max_restarts=0)
        try:
            supervisor.start()
            supervisor.kill()
            with pytest.raises(RestartBudgetExhausted) as excinfo:
                supervisor.wait(timeout=60.0)
            assert supervisor.state == "failed"
            assert excinfo.value.budget == 0
        finally:
            supervisor.stop()


# ----------------------------------------------------------------------
# Graceful drain with an in-flight explain
# ----------------------------------------------------------------------


class _SlowExplain(BSTClassifier):
    """An explain that blocks until released — a deterministic way to pin
    a request in flight while the gateway is told to drain."""

    def __init__(self):
        super().__init__()
        self.in_flight = threading.Event()
        self.release = threading.Event()

    def explain(self, query, **kwargs):
        self.in_flight.set()
        assert self.release.wait(timeout=30.0), "drain test never released"
        return super().explain(query, **kwargs)


class TestDrainWithInFlightExplain:
    def test_in_flight_explain_completes_through_close(self, example):
        model = _SlowExplain().fit(example)
        registry = ModelRegistry(counters=EngineCounters())
        registry.deploy_model("mem", model)
        server = GatewayServer(registry).start()
        url = server.url
        results = []

        def hit():
            results.append(
                _request(
                    f"{url}/v1/models/mem:explain",
                    {"items": Q_ITEMS, "min_satisfaction": 0.5},
                    timeout=60.0,
                )
            )

        thread = threading.Thread(target=hit)
        thread.start()
        try:
            assert model.in_flight.wait(timeout=30.0)
            # Drain while the explain is pinned in flight: the listener
            # closes (new connections refused) but the accepted request
            # must still complete.
            server.close()
            model.release.set()
            thread.join(timeout=60.0)
            assert not thread.is_alive()
            status, payload = results[0]
            assert status == 200
            assert payload["evidence"]
            with pytest.raises((urllib.error.URLError, OSError)):
                urllib.request.urlopen(f"{url}/health", timeout=2.0)
        finally:
            model.release.set()
            registry.close()
