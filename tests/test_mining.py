"""(MC)²BAR mining tests — Algorithms 3 and 4 against brute force."""

from itertools import combinations

import numpy as np
import pytest

from repro.bst.mining import mine_mcmcbar, mine_mcmcbar_per_sample
from repro.bst.row_bar import is_maximally_complex
from repro.bst.table import BST
from repro.evaluation.timing import Budget, BudgetExceeded

from conftest import random_relational


def brute_force_supports(ds, class_id):
    """All supportable class subsets: intersections of gene-row supports.

    A subset S is supportable iff S = {class rows expressing every item of
    closure(S)} for some seed subset; equivalently the support sets of
    closed-on-rows patterns within the class.
    """
    bst = BST.build(ds, class_id)
    rows = ds.class_members(class_id)
    supports = set()
    for r in range(1, len(rows) + 1):
        for combo in combinations(rows, r):
            closure = None
            for row in combo:
                items = ds.samples[row]
                closure = items if closure is None else closure & items
            if not closure:
                continue
            support = frozenset(
                c for c in rows if closure <= ds.samples[c]
            )
            supports.add(support)
    return supports


class TestAlgorithm3:
    def test_mines_top_k_largest_supports(self):
        """The k mined supports must be the k largest supportable subsets."""
        rng = np.random.default_rng(31)
        for _ in range(10):
            ds = random_relational(rng, n_samples_range=(4, 9))
            for class_id in range(ds.n_classes):
                bst = BST.build(ds, class_id)
                expected = brute_force_supports(ds, class_id)
                mined = mine_mcmcbar(bst, k=10**6)
                assert {r.support for r in mined} == expected
                # And truncation keeps the largest ones.
                for k in (1, 2, 3):
                    top = mine_mcmcbar(bst, k=k)
                    if len(expected) >= k:
                        assert len(top) == k
                    sizes = sorted((len(s) for s in expected), reverse=True)
                    assert [len(r.support) for r in top] == sizes[: len(top)]

    def test_rules_are_maximally_complex(self):
        rng = np.random.default_rng(37)
        for _ in range(8):
            ds = random_relational(rng, n_samples_range=(4, 9))
            bst = BST.build(ds, 0)
            for rule in mine_mcmcbar(bst, k=20):
                assert is_maximally_complex(bst, rule)

    def test_rules_are_100_percent_confident(self):
        """Every (MC)²BAR must have empirical confidence 1 (on datasets
        without cross-class duplicate rows)."""
        rng = np.random.default_rng(41)
        checked = 0
        while checked < 8:
            ds = random_relational(rng, n_samples_range=(4, 9))
            if len({s for s in ds.samples}) < ds.n_samples:
                continue
            bst = BST.build(ds, 0)
            for rule in mine_mcmcbar(bst, k=10):
                bar = rule.to_bar(bst)
                assert bar.confidence(ds) == 1.0
                assert bar.support_set(ds) == rule.support
            checked += 1

    def test_running_example_top_rule(self, example):
        bst = BST.build(example, 0)
        top = mine_mcmcbar(bst, k=1)[0]
        # The largest supportable Cancer subsets have size 2.
        assert len(top.support) == 2

    def test_k_zero_returns_empty(self, example):
        assert mine_mcmcbar(BST.build(example, 0), 0) == []

    def test_budget_enforced(self, example):
        budget = Budget(1e-9)
        with pytest.raises(BudgetExceeded):
            mine_mcmcbar(BST.build(example, 0), 10, budget=budget)

    def test_tie_break_by_confidence_is_stable(self, example):
        bst = BST.build(example, 0)
        plain = mine_mcmcbar(bst, k=5)
        tied = mine_mcmcbar(bst, k=5, break_ties_by_confidence=True)
        assert {r.support for r in plain} == {r.support for r in tied}


class TestAlgorithm4:
    def test_every_sample_covered(self):
        """Algorithm 4's purpose: each class sample belongs to the support
        of at least one mined rule."""
        rng = np.random.default_rng(43)
        for _ in range(8):
            ds = random_relational(rng, n_samples_range=(4, 9))
            bst = BST.build(ds, 0)
            rules = mine_mcmcbar_per_sample(bst, k=3)
            covered = set()
            for rule in rules:
                covered |= rule.support
            expressing = {
                c for c in bst.columns if ds.samples[c]
            }
            assert expressing <= covered

    def test_no_duplicate_supports(self, example):
        bst = BST.build(example, 0)
        rules = mine_mcmcbar_per_sample(bst, k=4)
        supports = [r.support for r in rules]
        assert len(supports) == len(set(supports))

    def test_sorted_largest_first(self, example):
        bst = BST.build(example, 0)
        rules = mine_mcmcbar_per_sample(bst, k=4)
        sizes = [len(r.support) for r in rules]
        assert sizes == sorted(sizes, reverse=True)
