"""BST construction tests — Figure 1 exactly, plus Algorithm 1 invariants."""

import numpy as np
import pytest

from repro.bst.table import BST, build_all_bsts
from repro.datasets.dataset import RelationalDataset

from conftest import random_relational


def idx(example, name):
    return example.item_names.index(name)


def sample_idx(example, name):
    return example.sample_names.index(name)


class TestFigure1:
    """The Cancer BST of the running example must match Figure 1 cell for
    cell (as described throughout Sections 3-5)."""

    @pytest.fixture
    def bst(self, example):
        return BST.build(example, 0)

    def test_black_dots_only_for_g1(self, bst, example):
        g1 = idx(example, "g1")
        for gene in range(example.n_items):
            for col in bst.columns:
                cell = bst.cell(gene, col)
                if cell is not None and cell.black_dot:
                    assert gene == g1

    def test_g1_black_dots_at_s1_s2(self, bst, example):
        g1 = idx(example, "g1")
        assert bst.cell(g1, sample_idx(example, "s1")).black_dot
        assert bst.cell(g1, sample_idx(example, "s2")).black_dot
        assert bst.cell(g1, sample_idx(example, "s3")) is None

    def test_g3_s1_cell_matches_paper(self, bst, example):
        """Paper: (g3, s1) corresponds to 'g3 AND g1 expressed AND (either g4
        or g6 not expressed)' — lists (s4: g1) and (s5: -g4, -g6)."""
        cell = bst.cell(idx(example, "g3"), sample_idx(example, "s1"))
        by_sample = {e.outside_sample: e for e in cell.exclusion_lists}
        s4, s5 = sample_idx(example, "s4"), sample_idx(example, "s5")
        assert not by_sample[s4].negated
        assert by_sample[s4].items == (idx(example, "g1"),)
        assert by_sample[s5].negated
        assert by_sample[s5].items == (idx(example, "g4"), idx(example, "g6"))

    def test_g5_s1_cell_matches_section_5_4(self, bst, example):
        cell = bst.cell(idx(example, "g5"), sample_idx(example, "s1"))
        rendered = sorted(e.render(example) for e in cell.exclusion_lists)
        assert rendered == ["(s4: g1)", "(s5: -g4,-g6)"]

    def test_blank_iff_not_expressed(self, bst, example):
        for gene in range(example.n_items):
            for col in bst.columns:
                blank = bst.cell(gene, col) is None
                assert blank == (gene not in example.samples[col])

    def test_pair_lists_shared(self, bst, example):
        """Algorithm 1's pointer scheme: cells of one column referencing the
        same outside sample share one list object."""
        s1 = sample_idx(example, "s1")
        g3, g5 = idx(example, "g3"), idx(example, "g5")
        l3 = [e for e in bst.cell(g3, s1).exclusion_lists if e.outside_sample == 4]
        l5 = [e for e in bst.cell(g5, s1).exclusion_lists if e.outside_sample == 4]
        assert l3[0] is l5[0]

    def test_render_contains_rows(self, bst):
        text = bst.render()
        assert "g3" in text and "(s5: -g4,-g6)" in text


class TestAlgorithmInvariants:
    def test_cell_rules_are_100_percent_confident(self):
        """Every atomic cell rule (Section 3.2) must be satisfied by its own
        sample and by no sample outside the class."""
        rng = np.random.default_rng(7)
        for _ in range(15):
            ds = random_relational(rng)
            for class_id in range(ds.n_classes):
                bst = BST.build(ds, class_id)
                duplicates = _has_cross_class_duplicates(ds, class_id)
                for col in bst.columns:
                    for cell in bst.column_cells(col):
                        outside_hits = [
                            h
                            for h in bst.outside
                            if cell.is_satisfied(ds.samples[h])
                        ]
                        assert not outside_hits, (class_id, cell)
                        if not duplicates:
                            assert cell.is_satisfied(ds.samples[col])

    def test_space_cost_bound(self):
        """Section 3.1.1: list references are bounded by
        (|S| - |C_i|) * |G| * |C_i|."""
        rng = np.random.default_rng(11)
        for _ in range(10):
            ds = random_relational(rng)
            for class_id in range(ds.n_classes):
                bst = BST.build(ds, class_id)
                n_c = len(bst.columns)
                bound = (ds.n_samples - n_c) * ds.n_items * n_c + ds.n_items * n_c
                assert bst.space_cost() <= bound

    def test_row_support_is_expression(self):
        rng = np.random.default_rng(3)
        ds = random_relational(rng)
        bst = BST.build(ds, 0)
        for gene in range(ds.n_items):
            expected = frozenset(
                c for c in bst.columns if gene in ds.samples[c]
            )
            assert bst.row_support(gene) == expected

    def test_unknown_class_raises(self, example):
        with pytest.raises(ValueError):
            BST.build(example, 5)

    def test_build_all(self, example):
        bsts = build_all_bsts(example)
        assert [b.class_id for b in bsts] == [0, 1]

    def test_identical_cross_class_samples_yield_empty_list(self):
        """Two identical samples in different classes produce an empty,
        unsatisfiable exclusion list (the Theorem 2 hypothesis edge)."""
        ds = RelationalDataset(
            item_names=("a", "b"),
            class_names=("x", "y"),
            samples=(frozenset({0, 1}), frozenset({0, 1})),
            labels=(0, 1),
        )
        bst = BST.build(ds, 0)
        cell = bst.cell(0, 0)
        assert cell is not None and not cell.black_dot
        elist = cell.exclusion_lists[0]
        assert elist.is_empty
        assert elist.satisfaction({0, 1}) == 0.0
        assert not cell.is_satisfied({0, 1})


def _has_cross_class_duplicates(ds, class_id):
    inside = {ds.samples[c] for c in ds.class_members(class_id)}
    outside = {ds.samples[h] for h in ds.outside_members(class_id)}
    return bool(inside & outside)


class TestExclusionList:
    def test_negative_satisfaction(self, example):
        from repro.bst.table import ExclusionList

        elist = ExclusionList(4, (3, 5), negated=True)  # (s5: -g4, -g6)
        assert elist.satisfaction({0, 3, 4}) == 0.5  # g4 expressed, g6 not
        assert elist.satisfaction({0}) == 1.0
        assert elist.satisfaction({3, 5}) == 0.0

    def test_positive_satisfaction(self):
        from repro.bst.table import ExclusionList

        elist = ExclusionList(3, (0,), negated=False)  # (s4: g1)
        assert elist.satisfaction({0}) == 1.0
        assert elist.satisfaction({1}) == 0.0

    def test_clause_semantics_match_satisfaction(self):
        from repro.bst.table import ExclusionList

        elist = ExclusionList(2, (1, 4), negated=True)
        for query in [set(), {1}, {4}, {1, 4}, {0, 1, 4}]:
            assert elist.clause().evaluate(query) == elist.is_satisfied(query)
