"""SMO SVM tests."""

import numpy as np
import pytest

from repro.baselines.svm import BinarySVC, SVMClassifier, rbf_kernel


def blobs(rng, n_per, centers, spread=0.4):
    X, y = [], []
    for label, center in enumerate(centers):
        pts = rng.normal(0, spread, size=(n_per, len(center))) + np.asarray(center)
        X.append(pts)
        y.extend([label] * n_per)
    return np.vstack(X), np.asarray(y)


class TestRbfKernel:
    def test_diagonal_is_one(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(5, 3))
        K = rbf_kernel(X, X, gamma=0.5)
        np.testing.assert_allclose(np.diag(K), 1.0)

    def test_symmetric_and_bounded(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(6, 2))
        K = rbf_kernel(X, X, gamma=1.0)
        np.testing.assert_allclose(K, K.T, atol=1e-12)
        assert (K >= 0).all() and (K <= 1.0 + 1e-12).all()


class TestBinarySVC:
    def test_separable_blobs(self):
        rng = np.random.default_rng(2)
        X, y = blobs(rng, 20, [(-2, -2), (2, 2)])
        labels = np.where(y == 0, -1.0, 1.0)
        model = BinarySVC(C=1.0).fit(X, labels)
        assert (model.predict(X) == labels).mean() >= 0.95

    def test_linear_kernel(self):
        rng = np.random.default_rng(3)
        X, y = blobs(rng, 15, [(-3, 0), (3, 0)])
        labels = np.where(y == 0, -1.0, 1.0)
        model = BinarySVC(C=1.0, kernel="linear").fit(X, labels)
        assert (model.predict(X) == labels).mean() >= 0.95

    def test_bad_labels_rejected(self):
        with pytest.raises(ValueError):
            BinarySVC().fit(np.zeros((2, 1)), np.array([0.0, 1.0]))

    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            BinarySVC(kernel="poly")

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            BinarySVC().decision_function(np.zeros((1, 2)))


class TestSVMClassifier:
    def test_binary_accuracy(self):
        rng = np.random.default_rng(4)
        X, y = blobs(rng, 25, [(-2, 1), (2, -1)])
        model = SVMClassifier().fit(X, y)
        assert (model.predict(X) == y).mean() >= 0.95

    def test_generalization(self):
        rng = np.random.default_rng(5)
        X, y = blobs(rng, 30, [(-2, -2), (2, 2)])
        X_test, y_test = blobs(rng, 10, [(-2, -2), (2, 2)])
        model = SVMClassifier().fit(X, y)
        assert (model.predict(X_test) == y_test).mean() >= 0.9

    def test_three_classes_one_vs_one(self):
        rng = np.random.default_rng(6)
        X, y = blobs(rng, 15, [(-3, 0), (3, 0), (0, 4)])
        model = SVMClassifier().fit(X, y)
        assert (model.predict(X) == y).mean() >= 0.9

    def test_constant_feature_handled(self):
        rng = np.random.default_rng(7)
        X, y = blobs(rng, 10, [(-2,), (2,)])
        X = np.hstack([X, np.ones((X.shape[0], 1))])  # zero-variance column
        model = SVMClassifier().fit(X, y)
        assert (model.predict(X) == y).mean() >= 0.9

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SVMClassifier().predict(np.zeros((1, 2)))
