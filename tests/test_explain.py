"""Explanation machinery tests (Section 5.3.2)."""

import pytest

from repro.core.classifier import BSTClassifier
from repro.core.explain import explain_classification

Q = frozenset({0, 3, 4})


@pytest.fixture
def clf(example):
    return BSTClassifier().fit(example)


class TestExplanations:
    def test_prediction_in_explanation(self, clf, example):
        explanation = explain_classification(clf, Q)
        assert explanation.predicted == 0
        assert explanation.class_values[0] == pytest.approx(0.75)

    def test_threshold_filters_evidence(self, clf):
        all_evidence = explain_classification(clf, Q, min_satisfaction=0.0)
        strong = explain_classification(clf, Q, min_satisfaction=0.9)
        assert len(strong.evidence) <= len(all_evidence.evidence)
        assert all(e.satisfaction >= 0.9 for e in strong.evidence)

    def test_evidence_sorted_descending(self, clf):
        explanation = explain_classification(clf, Q, min_satisfaction=0.0)
        values = [e.satisfaction for e in explanation.evidence]
        assert values == sorted(values, reverse=True)

    def test_evidence_matches_figure3_cells(self, clf, example):
        """The Cancer evidence at threshold 0 covers the four scored cells of
        Figure 3: (g1,s1), (g1,s2), (g5,s1), (g4,s3)."""
        explanation = explain_classification(clf, Q, min_satisfaction=0.0)
        cells = {(e.gene, e.sample) for e in explanation.evidence}
        g = example.item_names.index
        assert cells == {(g("g1"), 0), (g("g1"), 1), (g("g5"), 0), (g("g4"), 2)}

    def test_limit(self, clf):
        explanation = explain_classification(clf, Q, min_satisfaction=0.0, limit=2)
        assert len(explanation.evidence) == 2

    def test_explain_other_class(self, clf):
        explanation = explain_classification(clf, Q, class_id=1, min_satisfaction=0.0)
        assert explanation.predicted == 0  # prediction unchanged
        # Evidence cells belong to Healthy columns (samples 3, 4).
        assert all(e.sample in (3, 4) for e in explanation.evidence)

    def test_describe_renders(self, clf):
        explanation = explain_classification(clf, Q, min_satisfaction=0.0)
        text = explanation.describe(clf.bsts[0])
        assert "Cancer" in text and "g1" in text

    def test_rule_expressions_are_satisfied_when_value_one(self, clf):
        explanation = explain_classification(clf, Q, min_satisfaction=1.0)
        for evidence in explanation.evidence:
            assert evidence.rule.evaluate(Q)
