"""Compiled model artifacts: round trips, validation, zero-rebuild loads,
integrity verification and quarantine."""

import json
import shutil
import zipfile

import numpy as np
import pytest

from conftest import random_relational
from repro.core.arithmetization import COMBINERS
from repro.core.artifact import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactCorrupt,
    ArtifactError,
    ArtifactStale,
    DatasetSummary,
    _INTEGRITY_MEMBER,
    load_artifact,
    save_artifact,
)
from repro.core.classifier import BSTClassifier
from repro.core.fast import (
    FastBSTCEvaluator,
    clear_evaluator_cache,
    evaluator_cache_info,
    get_evaluator,
)
from repro.datasets.dataset import RelationalDataset
from repro.testing import corrupt_artifact_member


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_evaluator_cache()
    yield
    clear_evaluator_cache()


def _random_queries(rng, dataset, n=16):
    return rng.random((n, dataset.n_items)) < rng.uniform(0.1, 0.6)


class TestRoundTrip:
    @pytest.mark.parametrize("arithmetization", sorted(COMBINERS))
    def test_bit_identical_across_arithmetizations(
        self, tmp_path, arithmetization
    ):
        rng = np.random.default_rng(7)
        for case in range(5):
            dataset = random_relational(rng)
            evaluator = FastBSTCEvaluator(dataset, arithmetization)
            path = save_artifact(
                evaluator, tmp_path / f"{arithmetization}{case}.npz"
            )
            loaded = load_artifact(path)
            queries = _random_queries(rng, dataset)
            assert np.array_equal(
                evaluator.classification_values_batch(queries),
                loaded.classification_values_batch(queries),
            )
            for query in queries[:4]:
                assert np.array_equal(
                    evaluator.classification_values(query),
                    loaded.classification_values(query),
                )

    def test_dataset_summary(self, tmp_path, example):
        evaluator = FastBSTCEvaluator(example)
        loaded = load_artifact(save_artifact(evaluator, tmp_path / "m.npz"))
        summary = loaded.dataset
        assert isinstance(summary, DatasetSummary)
        assert summary.n_items == example.n_items
        assert summary.n_classes == example.n_classes
        assert summary.n_samples == example.n_samples
        assert summary.fingerprint == example.fingerprint
        assert summary.item_names == example.item_names
        assert summary.class_names == example.class_names
        assert loaded.arithmetization == evaluator.arithmetization

    def test_plan_views_are_memory_mapped(self, tmp_path, example):
        evaluator = FastBSTCEvaluator(example)
        loaded = load_artifact(save_artifact(evaluator, tmp_path / "m.npz"))
        mapped = [
            pc.inside_f
            for pc in loaded.plan.classes
            if pc is not None and pc.inside_f.size
        ]
        # Per-class views slice the flat arena members; np.memmap survives
        # slicing/reshaping, so every view is still a map of the file.
        assert mapped and all(isinstance(a, np.memmap) for a in mapped)

    def test_eager_load(self, tmp_path, example):
        evaluator = FastBSTCEvaluator(example)
        path = save_artifact(evaluator, tmp_path / "m.npz")
        loaded = load_artifact(path, mmap=False)
        assert not any(
            isinstance(pc.inside_f, np.memmap)
            for pc in loaded.plan.classes
            if pc is not None
        )
        query = np.zeros(example.n_items, dtype=bool)
        query[:2] = True
        assert np.array_equal(
            evaluator.classification_values(query),
            loaded.classification_values(query),
        )

    def test_empty_class_round_trip(self, tmp_path):
        # A class with no training samples has no table; the artifact must
        # record and restore that hole.
        dataset = RelationalDataset(
            item_names=("a", "b", "c"),
            class_names=("x", "y", "z"),
            samples=(frozenset({0, 1}), frozenset({2})),
            labels=(0, 2),
        )
        evaluator = FastBSTCEvaluator(dataset)
        loaded = load_artifact(save_artifact(evaluator, tmp_path / "m.npz"))
        assert loaded.plan.classes[1] is None
        queries = np.eye(3, dtype=bool)
        assert np.array_equal(
            evaluator.classification_values_batch(queries),
            loaded.classification_values_batch(queries),
        )


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError, match="no such artifact"):
            load_artifact(tmp_path / "absent.npz")

    def test_not_an_artifact(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"definitely not a zip file")
        with pytest.raises(ArtifactError):
            load_artifact(path)

    def test_missing_entry(self, tmp_path, example):
        evaluator = FastBSTCEvaluator(example)
        path = save_artifact(evaluator, tmp_path / "m.npz")
        with np.load(path) as npz:
            arrays = {k: npz[k] for k in npz.files if k != "meta_fingerprint"}
        stripped = tmp_path / "stripped.npz"
        with stripped.open("wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ArtifactError, match="meta_fingerprint"):
            load_artifact(stripped)

    def test_unknown_format_version(self, tmp_path, example):
        evaluator = FastBSTCEvaluator(example)
        path = save_artifact(evaluator, tmp_path / "m.npz")
        with np.load(path) as npz:
            arrays = {k: npz[k] for k in npz.files}
        arrays["meta_format_version"] = np.array(
            ARTIFACT_FORMAT_VERSION + 1, dtype=np.int64
        )
        future = tmp_path / "future.npz"
        with future.open("wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ArtifactError, match="format version"):
            load_artifact(future)

    def test_fingerprint_mismatch(self, tmp_path, example):
        evaluator = FastBSTCEvaluator(example)
        path = save_artifact(evaluator, tmp_path / "m.npz")
        loaded = load_artifact(path, expected_fingerprint=example.fingerprint)
        assert loaded.dataset.fingerprint == example.fingerprint
        with pytest.raises(ArtifactError, match="stale"):
            load_artifact(path, expected_fingerprint="0" * 40)

    def test_geometry_mismatch(self, tmp_path, example):
        # The geometry table says how long each arena member must be; a
        # disagreement (truncated member, mangled geometry) must be a
        # structured error, not a garbage evaluator.
        evaluator = FastBSTCEvaluator(example)
        path = save_artifact(evaluator, tmp_path / "m.npz")
        with np.load(path) as npz:
            arrays = {k: npz[k] for k in npz.files}
        geometry = arrays["meta_plan_geometry"].copy()
        geometry[0, 2] += 1  # claim one more h_flat reference than stored
        arrays["meta_plan_geometry"] = geometry
        bad = tmp_path / "bad.npz"
        with bad.open("wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ArtifactError, match="geometry"):
            load_artifact(bad)

    def test_arena_dtype_mismatch(self, tmp_path, example):
        evaluator = FastBSTCEvaluator(example)
        path = save_artifact(evaluator, tmp_path / "m.npz")
        with np.load(path) as npz:
            arrays = {k: npz[k] for k in npz.files}
        arrays["arena_inside"] = arrays["arena_inside"].astype(np.int8)
        bad = tmp_path / "bad.npz"
        with bad.open("wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ArtifactError, match="dtype"):
            load_artifact(bad)


@pytest.mark.faults
class TestIntegrity:
    def test_manifest_written_and_valid(self, tmp_path, example):
        path = save_artifact(FastBSTCEvaluator(example), tmp_path / "m.npz")
        with zipfile.ZipFile(path) as archive:
            names = archive.namelist()
            manifest = json.loads(archive.read(_INTEGRITY_MEMBER).decode())
            recorded = {
                info.filename: int(info.CRC)
                for info in archive.infolist()
                if info.filename != _INTEGRITY_MEMBER
            }
        assert _INTEGRITY_MEMBER in names
        assert set(manifest["members"]) == set(recorded)
        for name, crc in recorded.items():
            assert manifest["members"][name]["crc32"] == crc

    def test_every_member_byte_flip_detected_eagerly(self, tmp_path, example):
        # One artifact per member: flip one payload byte, demand an eager
        # load, and require detection + quarantine before any prediction.
        source = save_artifact(FastBSTCEvaluator(example), tmp_path / "m.npz")
        with zipfile.ZipFile(source) as archive:
            members = [
                info.filename
                for info in archive.infolist()
                if info.file_size > 0
            ]
        assert len(members) > 10
        for index, member in enumerate(members):
            path = tmp_path / f"flip{index}.npz"
            shutil.copy(source, path)
            corrupt_artifact_member(path, member, byte_index=0)
            with pytest.raises(ArtifactCorrupt):
                load_artifact(path, verify="eager", on_corrupt="quarantine")
            assert not path.exists()  # quarantined
            quarantined = path.with_name(path.name + ".quarantine")
            assert (quarantined / path.name).exists()

    def test_lazy_load_detects_before_first_prediction(
        self, tmp_path, example
    ):
        path = save_artifact(FastBSTCEvaluator(example), tmp_path / "m.npz")
        with zipfile.ZipFile(path) as archive:
            table_info = next(
                info
                for info in archive.infolist()
                if info.filename.startswith("arena_") and info.file_size > 128
            )
        # Flip a data byte (not the npy header) so the member still maps
        # cleanly — only the deferred CRC check can catch it.
        corrupt_artifact_member(
            path, table_info.filename, byte_index=table_info.file_size - 1
        )
        loaded = load_artifact(path, verify="lazy", on_corrupt="fail")
        query = np.zeros(example.n_items, dtype=bool)
        with pytest.raises(ArtifactCorrupt):
            loaded.classification_values(query)
        with pytest.raises(ArtifactCorrupt):  # cached, raised again
            loaded.classification_values_batch([query])

    def test_lazy_clean_artifact_verifies_once_then_serves(
        self, tmp_path, example
    ):
        evaluator = FastBSTCEvaluator(example)
        path = save_artifact(evaluator, tmp_path / "m.npz")
        loaded = load_artifact(path, verify="lazy")
        queries = np.eye(example.n_items, dtype=bool)
        assert np.array_equal(
            loaded.classification_values_batch(queries),
            evaluator.classification_values_batch(queries),
        )

    def test_verify_off_skips_checking(self, tmp_path, example):
        path = save_artifact(FastBSTCEvaluator(example), tmp_path / "m.npz")
        with zipfile.ZipFile(path) as archive:
            table_info = next(
                info
                for info in archive.infolist()
                if info.filename.startswith("arena_") and info.file_size > 8
            )
        # Flip the payload's last byte (past the npy header) so the archive
        # still parses; verify="off" must load without complaint.
        corrupt_artifact_member(
            path, table_info.filename, byte_index=table_info.file_size - 1
        )
        load_artifact(path, verify="off")
        assert path.exists()

    def test_manifest_tamper_detected(self, tmp_path, example):
        path = save_artifact(FastBSTCEvaluator(example), tmp_path / "m.npz")
        corrupt_artifact_member(path, _INTEGRITY_MEMBER, byte_index=5)
        with pytest.raises(ArtifactCorrupt):
            load_artifact(path, on_corrupt="fail")
        assert path.exists()  # on_corrupt="fail" leaves the file in place

    def test_missing_manifest_loads_unverified(self, tmp_path, example):
        from repro.evaluation.timing import engine_counters

        evaluator = FastBSTCEvaluator(example)
        path = save_artifact(evaluator, tmp_path / "m.npz")
        with np.load(path) as npz:
            arrays = {k: npz[k] for k in npz.files if k != _INTEGRITY_MEMBER}
        legacy = tmp_path / "legacy.npz"
        with legacy.open("wb") as handle:
            np.savez(handle, **arrays)
        before = engine_counters.get("artifact_unverified_loads")
        loaded = load_artifact(legacy)
        assert engine_counters.get("artifact_unverified_loads") == before + 1
        query = np.zeros(example.n_items, dtype=bool)
        assert np.array_equal(
            loaded.classification_values(query),
            evaluator.classification_values(query),
        )

    def test_quarantine_collision_numbers_files(self, tmp_path, example):
        for round_index in range(2):
            path = save_artifact(
                FastBSTCEvaluator(example), tmp_path / "m.npz"
            )
            corrupt_artifact_member(path, "meta_fingerprint.npy")
            with pytest.raises(ArtifactCorrupt):
                load_artifact(path, verify="eager")
        quarantine = tmp_path / "m.npz.quarantine"
        assert (quarantine / "m.npz").exists()
        assert (quarantine / "m.npz.1").exists()

    def test_corrupt_error_carries_structure(self, tmp_path, example):
        path = save_artifact(FastBSTCEvaluator(example), tmp_path / "m.npz")
        corrupt_artifact_member(path, "meta_fingerprint.npy")
        with pytest.raises(ArtifactCorrupt) as info:
            load_artifact(path, verify="eager", on_corrupt="quarantine")
        assert info.value.member == "meta_fingerprint.npy"
        assert info.value.quarantine_path is not None
        assert info.value.quarantine_path.exists()

    def test_stale_is_not_quarantined(self, tmp_path, example):
        path = save_artifact(FastBSTCEvaluator(example), tmp_path / "m.npz")
        with pytest.raises(ArtifactStale):
            load_artifact(path, expected_fingerprint="0" * 40)
        assert path.exists()  # intact file, wrong model: never quarantined

    def test_extra_member_detected(self, tmp_path, example):
        path = save_artifact(FastBSTCEvaluator(example), tmp_path / "m.npz")
        with zipfile.ZipFile(path, "a") as archive:
            archive.writestr("sneaky.npy", b"not in the manifest")
        with pytest.raises(ArtifactCorrupt, match="member list"):
            load_artifact(path, on_corrupt="fail")

    def test_invalid_parameters(self, tmp_path, example):
        path = save_artifact(FastBSTCEvaluator(example), tmp_path / "m.npz")
        with pytest.raises(ValueError, match="verify"):
            load_artifact(path, verify="sometimes")
        with pytest.raises(ValueError, match="on_corrupt"):
            load_artifact(path, on_corrupt="shrug")


class TestReaderFallbacks:
    def _recompress(self, source, destination):
        """Rewrite an artifact with every member deflated (payload CRCs are
        computed over uncompressed bytes, so the manifest stays valid)."""
        with zipfile.ZipFile(source) as archive:
            payloads = {
                info.filename: archive.read(info.filename)
                for info in archive.infolist()
            }
        with zipfile.ZipFile(
            destination, "w", zipfile.ZIP_DEFLATED
        ) as archive:
            for name, payload in payloads.items():
                archive.writestr(name, payload)
        return destination

    def test_compressed_members_fall_back_to_eager(self, tmp_path, example):
        evaluator = FastBSTCEvaluator(example)
        source = save_artifact(evaluator, tmp_path / "m.npz")
        packed = self._recompress(source, tmp_path / "packed.npz")
        loaded = load_artifact(packed, verify="eager")
        assert not any(
            isinstance(pc.inside_f, np.memmap)
            for pc in loaded.plan.classes
            if pc is not None
        )
        queries = np.eye(example.n_items, dtype=bool)
        assert np.array_equal(
            loaded.classification_values_batch(queries),
            evaluator.classification_values_batch(queries),
        )

    def test_compressed_corruption_still_detected(self, tmp_path, example):
        import struct

        source = save_artifact(FastBSTCEvaluator(example), tmp_path / "m.npz")
        packed = self._recompress(source, tmp_path / "packed.npz")
        # No stored offsets in a deflated archive, so corrupt_artifact_member
        # refuses; locate one member's compressed payload by hand and flip a
        # byte in the middle of it.
        with zipfile.ZipFile(packed) as archive:
            info = next(
                i for i in archive.infolist() if i.filename.startswith("arena_")
            )
        data = bytearray(packed.read_bytes())
        name_len, extra_len = struct.unpack_from("<HH", data, info.header_offset + 26)
        payload_start = info.header_offset + 30 + name_len + extra_len
        data[payload_start + info.compress_size // 2] ^= 0xFF
        packed.write_bytes(bytes(data))
        with pytest.raises((ArtifactCorrupt, ArtifactError)):
            load_artifact(packed, verify="eager", on_corrupt="fail")

    def test_mmap_member_refusal_falls_back_to_eager(
        self, tmp_path, example, monkeypatch
    ):
        import repro.core.artifact as artifact_module

        evaluator = FastBSTCEvaluator(example)
        path = save_artifact(evaluator, tmp_path / "m.npz")
        monkeypatch.setattr(
            artifact_module, "_mmap_member", lambda path, offset: None
        )
        loaded = load_artifact(path)
        assert not any(
            isinstance(pc.inside_f, np.memmap)
            for pc in loaded.plan.classes
            if pc is not None
        )
        queries = np.eye(example.n_items, dtype=bool)
        assert np.array_equal(
            loaded.classification_values_batch(queries),
            evaluator.classification_values_batch(queries),
        )


@pytest.mark.faults
class TestRebuildFallback:
    def test_rebuild_from_training_data(self, tmp_path, example):
        clf = BSTClassifier().fit(example)
        path = clf.save(tmp_path / "clf.npz")
        corrupt_artifact_member(path, "meta_fingerprint.npy")
        clear_evaluator_cache()
        rebuilt = BSTClassifier.load(
            path, on_corrupt="rebuild", train_dataset=example
        )
        assert not path.exists()  # corrupt file was quarantined first
        query = np.zeros(example.n_items, dtype=bool)
        query[[0, 3, 4]] = True
        assert rebuilt.predict(query) == clf.predict(query)

    def test_rebuild_without_training_data_reraises(self, tmp_path, example):
        clf = BSTClassifier().fit(example)
        path = clf.save(tmp_path / "clf.npz")
        corrupt_artifact_member(path, "meta_fingerprint.npy")
        clear_evaluator_cache()
        with pytest.raises(ArtifactCorrupt):
            BSTClassifier.load(path, on_corrupt="rebuild")

    def test_clean_artifact_ignores_rebuild_policy(self, tmp_path, example):
        clf = BSTClassifier().fit(example)
        path = clf.save(tmp_path / "clf.npz")
        clear_evaluator_cache()
        loaded = BSTClassifier.load(
            path, on_corrupt="rebuild", train_dataset=example
        )
        assert path.exists()
        query = np.zeros(example.n_items, dtype=bool)
        assert loaded.predict(query) == clf.predict(query)


class TestClassifierSaveLoad:
    def test_round_trip_predictions(self, tmp_path):
        rng = np.random.default_rng(11)
        dataset = random_relational(rng)
        clf = BSTClassifier().fit(dataset)
        path = clf.save(tmp_path / "clf.npz")
        clear_evaluator_cache()
        loaded = BSTClassifier.load(path)
        queries = _random_queries(rng, dataset)
        assert np.array_equal(
            clf.predict_batch(queries), loaded.predict_batch(queries)
        )
        assert np.array_equal(
            clf.classification_values(queries[0]),
            loaded.classification_values(queries[0]),
        )

    def test_load_registers_in_cache(self, tmp_path, example):
        clf = BSTClassifier().fit(example)
        path = clf.save(tmp_path / "clf.npz")
        clear_evaluator_cache()
        loaded = BSTClassifier.load(path)
        assert evaluator_cache_info()[0] == 1
        # A later fit on the same training data reuses the loaded evaluator:
        # zero table rebuild end to end.
        assert get_evaluator(example) is loaded._fast

    def test_save_reference_engine(self, tmp_path, example):
        clf = BSTClassifier(engine="reference").fit(example)
        loaded = BSTClassifier.load(clf.save(tmp_path / "clf.npz"))
        query = np.zeros(example.n_items, dtype=bool)
        query[[0, 3, 4]] = True
        assert loaded.predict(query) == clf.predict(query)

    def test_loaded_classifier_has_no_bsts(self, tmp_path, example):
        clf = BSTClassifier().fit(example)
        loaded = BSTClassifier.load(clf.save(tmp_path / "clf.npz"))
        with pytest.raises(ValueError, match="artifact"):
            loaded.bsts

    def test_unfitted_save(self, tmp_path):
        from repro.core.estimator import NotFittedError

        with pytest.raises(NotFittedError):
            BSTClassifier().save(tmp_path / "clf.npz")

    def test_expected_fingerprint(self, tmp_path, example):
        clf = BSTClassifier().fit(example)
        path = clf.save(tmp_path / "clf.npz")
        BSTClassifier.load(path, expected_fingerprint=example.fingerprint)
        with pytest.raises(ArtifactError):
            BSTClassifier.load(path, expected_fingerprint="f" * 40)
