"""Compiled model artifacts: round trips, validation, zero-rebuild loads."""

import numpy as np
import pytest

from conftest import random_relational
from repro.core.arithmetization import COMBINERS
from repro.core.artifact import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactError,
    DatasetSummary,
    load_artifact,
    save_artifact,
)
from repro.core.classifier import BSTClassifier
from repro.core.fast import (
    FastBSTCEvaluator,
    clear_evaluator_cache,
    evaluator_cache_info,
    get_evaluator,
)
from repro.datasets.dataset import RelationalDataset


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_evaluator_cache()
    yield
    clear_evaluator_cache()


def _random_queries(rng, dataset, n=16):
    return rng.random((n, dataset.n_items)) < rng.uniform(0.1, 0.6)


class TestRoundTrip:
    @pytest.mark.parametrize("arithmetization", sorted(COMBINERS))
    def test_bit_identical_across_arithmetizations(
        self, tmp_path, arithmetization
    ):
        rng = np.random.default_rng(7)
        for case in range(5):
            dataset = random_relational(rng)
            evaluator = FastBSTCEvaluator(dataset, arithmetization)
            path = save_artifact(
                evaluator, tmp_path / f"{arithmetization}{case}.npz"
            )
            loaded = load_artifact(path)
            queries = _random_queries(rng, dataset)
            assert np.array_equal(
                evaluator.classification_values_batch(queries),
                loaded.classification_values_batch(queries),
            )
            for query in queries[:4]:
                assert np.array_equal(
                    evaluator.classification_values(query),
                    loaded.classification_values(query),
                )

    def test_dataset_summary(self, tmp_path, example):
        evaluator = FastBSTCEvaluator(example)
        loaded = load_artifact(save_artifact(evaluator, tmp_path / "m.npz"))
        summary = loaded.dataset
        assert isinstance(summary, DatasetSummary)
        assert summary.n_items == example.n_items
        assert summary.n_classes == example.n_classes
        assert summary.n_samples == example.n_samples
        assert summary.fingerprint == example.fingerprint
        assert summary.item_names == example.item_names
        assert summary.class_names == example.class_names
        assert loaded.arithmetization == evaluator.arithmetization

    def test_tables_are_memory_mapped(self, tmp_path, example):
        evaluator = FastBSTCEvaluator(example)
        loaded = load_artifact(save_artifact(evaluator, tmp_path / "m.npz"))
        mapped = [
            t.inside_f
            for t in loaded._tables
            if t is not None and t.inside_f.size
        ]
        assert mapped and all(isinstance(a, np.memmap) for a in mapped)

    def test_eager_load(self, tmp_path, example):
        evaluator = FastBSTCEvaluator(example)
        path = save_artifact(evaluator, tmp_path / "m.npz")
        loaded = load_artifact(path, mmap=False)
        assert not any(
            isinstance(t.inside_f, np.memmap)
            for t in loaded._tables
            if t is not None
        )
        query = np.zeros(example.n_items, dtype=bool)
        query[:2] = True
        assert np.array_equal(
            evaluator.classification_values(query),
            loaded.classification_values(query),
        )

    def test_empty_class_round_trip(self, tmp_path):
        # A class with no training samples has no table; the artifact must
        # record and restore that hole.
        dataset = RelationalDataset(
            item_names=("a", "b", "c"),
            class_names=("x", "y", "z"),
            samples=(frozenset({0, 1}), frozenset({2})),
            labels=(0, 2),
        )
        evaluator = FastBSTCEvaluator(dataset)
        loaded = load_artifact(save_artifact(evaluator, tmp_path / "m.npz"))
        assert loaded._tables[1] is None
        queries = np.eye(3, dtype=bool)
        assert np.array_equal(
            evaluator.classification_values_batch(queries),
            loaded.classification_values_batch(queries),
        )


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError, match="no such artifact"):
            load_artifact(tmp_path / "absent.npz")

    def test_not_an_artifact(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"definitely not a zip file")
        with pytest.raises(ArtifactError):
            load_artifact(path)

    def test_missing_entry(self, tmp_path, example):
        evaluator = FastBSTCEvaluator(example)
        path = save_artifact(evaluator, tmp_path / "m.npz")
        with np.load(path) as npz:
            arrays = {k: npz[k] for k in npz.files if k != "meta_fingerprint"}
        stripped = tmp_path / "stripped.npz"
        with stripped.open("wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ArtifactError, match="meta_fingerprint"):
            load_artifact(stripped)

    def test_unknown_format_version(self, tmp_path, example):
        evaluator = FastBSTCEvaluator(example)
        path = save_artifact(evaluator, tmp_path / "m.npz")
        with np.load(path) as npz:
            arrays = {k: npz[k] for k in npz.files}
        arrays["meta_format_version"] = np.array(
            ARTIFACT_FORMAT_VERSION + 1, dtype=np.int64
        )
        future = tmp_path / "future.npz"
        with future.open("wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ArtifactError, match="format version"):
            load_artifact(future)

    def test_fingerprint_mismatch(self, tmp_path, example):
        evaluator = FastBSTCEvaluator(example)
        path = save_artifact(evaluator, tmp_path / "m.npz")
        loaded = load_artifact(path, expected_fingerprint=example.fingerprint)
        assert loaded.dataset.fingerprint == example.fingerprint
        with pytest.raises(ArtifactError, match="stale"):
            load_artifact(path, expected_fingerprint="0" * 40)

    def test_shape_mismatch(self, tmp_path, example):
        evaluator = FastBSTCEvaluator(example)
        path = save_artifact(evaluator, tmp_path / "m.npz")
        with np.load(path) as npz:
            arrays = {k: npz[k] for k in npz.files}
        arrays["class0_len_neg"] = arrays["class0_len_neg"][:, :-1]
        bad = tmp_path / "bad.npz"
        with bad.open("wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ArtifactError, match="shape"):
            load_artifact(bad)


class TestClassifierSaveLoad:
    def test_round_trip_predictions(self, tmp_path):
        rng = np.random.default_rng(11)
        dataset = random_relational(rng)
        clf = BSTClassifier().fit(dataset)
        path = clf.save(tmp_path / "clf.npz")
        clear_evaluator_cache()
        loaded = BSTClassifier.load(path)
        queries = _random_queries(rng, dataset)
        assert np.array_equal(
            clf.predict_batch(queries), loaded.predict_batch(queries)
        )
        assert np.array_equal(
            clf.classification_values(queries[0]),
            loaded.classification_values(queries[0]),
        )

    def test_load_registers_in_cache(self, tmp_path, example):
        clf = BSTClassifier().fit(example)
        path = clf.save(tmp_path / "clf.npz")
        clear_evaluator_cache()
        loaded = BSTClassifier.load(path)
        assert evaluator_cache_info()[0] == 1
        # A later fit on the same training data reuses the loaded evaluator:
        # zero table rebuild end to end.
        assert get_evaluator(example) is loaded._fast

    def test_save_reference_engine(self, tmp_path, example):
        clf = BSTClassifier(engine="reference").fit(example)
        loaded = BSTClassifier.load(clf.save(tmp_path / "clf.npz"))
        query = np.zeros(example.n_items, dtype=bool)
        query[[0, 3, 4]] = True
        assert loaded.predict(query) == clf.predict(query)

    def test_loaded_classifier_has_no_bsts(self, tmp_path, example):
        clf = BSTClassifier().fit(example)
        loaded = BSTClassifier.load(clf.save(tmp_path / "clf.npz"))
        with pytest.raises(ValueError, match="artifact"):
            loaded.bsts

    def test_unfitted_save(self, tmp_path):
        from repro.core.estimator import NotFittedError

        with pytest.raises(NotFittedError):
            BSTClassifier().save(tmp_path / "clf.npz")

    def test_expected_fingerprint(self, tmp_path, example):
        clf = BSTClassifier().fit(example)
        path = clf.save(tmp_path / "clf.npz")
        BSTClassifier.load(path, expected_fingerprint=example.fingerprint)
        with pytest.raises(ArtifactError):
            BSTClassifier.load(path, expected_fingerprint="f" * 40)
