"""Cross-validation harness tests."""

import pytest

from repro.datasets.synthetic import generate_expression_data
from repro.evaluation.crossval import (
    PhaseRecord,
    StudyResult,
    TestResult,
    TrainingSize,
    derive_seed,
    make_test,
    paper_training_sizes,
)


class TestTrainingSize:
    def test_requires_exactly_one_spec(self):
        with pytest.raises(ValueError):
            TrainingSize("bad")
        with pytest.raises(ValueError):
            TrainingSize("bad", fraction=0.5, counts=(1, 2))

    def test_paper_sizes(self, tiny_profile):
        sizes = paper_training_sizes(tiny_profile)
        assert [s.label for s in sizes] == ["40%", "60%", "80%", "1-9/0-8"]
        assert sizes[3].counts == (9, 8)


class TestMakeTest:
    def test_materialization(self, tiny_profile):
        data = generate_expression_data(tiny_profile, seed=0)
        test = make_test(data, TrainingSize("40%", fraction=0.4), 0, "TINY")
        assert test.train.n_samples == round(0.4 * data.n_samples)
        assert test.test.n_samples == data.n_samples - test.train.n_samples
        assert len(test.test_queries) == test.test.n_samples
        assert test.rel_train.n_samples == test.train.n_samples

    def test_deterministic(self, tiny_profile):
        data = generate_expression_data(tiny_profile, seed=0)
        size = TrainingSize("60%", fraction=0.6)
        a = make_test(data, size, 3, "TINY")
        b = make_test(data, size, 3, "TINY")
        assert a.train.labels == b.train.labels
        assert a.test_queries == b.test_queries

    def test_index_varies_split(self, tiny_profile):
        data = generate_expression_data(tiny_profile, seed=0)
        size = TrainingSize("60%", fraction=0.6)
        a = make_test(data, size, 0, "TINY")
        b = make_test(data, size, 1, "TINY")
        assert a.train.sample_names != b.train.sample_names

    def test_derive_seed_stable(self):
        assert derive_seed("a", 1) == derive_seed("a", 1)
        assert derive_seed("a", 1) != derive_seed("a", 2)


def _result(classifier, size, index, accuracy, phases):
    return TestResult(
        classifier=classifier,
        size_label=size,
        test_index=index,
        accuracy=accuracy,
        phases=tuple(PhaseRecord(*p) for p in phases),
    )


class TestStudyResult:
    @pytest.fixture
    def study(self):
        study = StudyResult("X")
        # BSTC finished everything.
        for i in range(3):
            study.add(_result("BSTC", "40%", i, 0.8 + 0.05 * i, [("bstc", 1.0, True)]))
        # RCBT: test 0 fine, test 1 rcbt DNF, test 2 topk DNF.
        study.add(
            _result("RCBT", "40%", 0, 0.9, [("topk", 0.5, True), ("rcbt", 2.0, True)])
        )
        study.add(
            _result("RCBT", "40%", 1, None, [("topk", 0.5, True), ("rcbt", 10.0, False)])
        )
        study.add(_result("RCBT", "40%", 2, None, [("topk", 10.0, False)]))
        return study

    def test_accuracies_finished_only(self, study):
        assert study.accuracies("RCBT", "40%") == [0.9]
        assert len(study.accuracies("BSTC", "40%")) == 3

    def test_dnf_ratio_counts_attempted(self, study):
        # rcbt phase: attempted on 2 tests (topk finished), 1 DNF.
        assert study.dnf_ratio("RCBT", "40%", "rcbt") == (1, 2)
        # topk phase attempted on all 3, 1 DNF.
        assert study.dnf_ratio("RCBT", "40%", "topk") == (1, 3)

    def test_mean_phase_seconds_floors_dnf(self, study):
        assert study.mean_phase_seconds("RCBT", "40%", "rcbt") == pytest.approx(
            (2.0 + 10.0) / 2
        )

    def test_mean_accuracy_where_finished(self, study):
        # RCBT finished only test 0 -> BSTC mean over test 0 = 0.8.
        assert study.mean_accuracy_where_finished(
            "BSTC", "RCBT", "40%"
        ) == pytest.approx(0.8)

    def test_boxplot_over_accuracies(self, study):
        stats = study.boxplot("BSTC", "40%")
        assert stats.n == 3
        assert stats.median == pytest.approx(0.85)

    def test_missing_phase_returns_none(self, study):
        assert study.mean_phase_seconds("BSTC", "40%", "rcbt") is None
