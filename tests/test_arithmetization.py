"""Arithmetization strategies and the Section 8 confidence measure."""

import pytest

from repro.core.arithmetization import (
    COMBINERS,
    classification_confidence,
    get_combiner,
    mean_combiner,
    min_combiner,
    product_combiner,
)


class TestCombiners:
    def test_min(self):
        assert min_combiner([0.5, 1.0, 0.75]) == 0.5

    def test_product(self):
        assert product_combiner([0.5, 0.5]) == 0.25

    def test_mean(self):
        assert mean_combiner([0.0, 1.0]) == 0.5

    def test_registry_complete(self):
        assert set(COMBINERS) == {"min", "product", "mean"}

    def test_get_combiner_unknown(self):
        with pytest.raises(ValueError):
            get_combiner("harmonic")

    def test_product_never_exceeds_min(self):
        values = [0.3, 0.9, 0.7]
        assert product_combiner(values) <= min_combiner(values)

    def test_single_value_agreement(self):
        for name in COMBINERS:
            assert get_combiner(name)([0.42]) == pytest.approx(0.42)


class TestConfidenceMeasure:
    def test_clear_winner(self):
        assert classification_confidence([0.8, 0.2]) == pytest.approx(0.75)

    def test_tie_is_zero(self):
        assert classification_confidence([0.5, 0.5]) == 0.0

    def test_all_zero_is_zero(self):
        assert classification_confidence([0.0, 0.0, 0.0]) == 0.0

    def test_single_class(self):
        assert classification_confidence([0.4]) == 1.0

    def test_order_invariant(self):
        assert classification_confidence([0.2, 0.9, 0.5]) == pytest.approx(
            classification_confidence([0.9, 0.5, 0.2])
        )
