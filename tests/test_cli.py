"""CLI tests."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "fig6" in out

    def test_run_fig3(self, capsys):
        assert main(["run", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "0.75" in out and "True" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "tableXX"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "BST for class Cancer" in out
        assert "classified as Cancer" in out

    def test_run_with_options(self, capsys):
        code = main(
            ["run", "fig2", "--tests", "1", "--topk-cutoff", "1", "--seed", "2"]
        )
        assert code == 0
        assert "g6" in capsys.readouterr().out
