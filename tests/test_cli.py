"""CLI tests."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.fast import clear_evaluator_cache, set_evaluator_cache_size
from repro.datasets.dataset import RelationalDataset
from repro.datasets.io import save_relational_json


@pytest.fixture
def relational_files(tmp_path):
    """Training and query JSON files for predict/serve-bench runs."""
    rng = np.random.default_rng(17)
    train = RelationalDataset.from_bool_matrix(
        rng.random((24, 30)) < 0.35,
        labels=tuple(int(x) for x in rng.integers(0, 3, size=24)),
    )
    queries = RelationalDataset.from_bool_matrix(
        rng.random((4, 30)) < 0.35,
        labels=(0, 0, 0, 0),
        sample_names=("qa", "qb", "qc", "qd"),
    )
    train_path = tmp_path / "train.json"
    query_path = tmp_path / "queries.json"
    save_relational_json(train, train_path)
    save_relational_json(queries, query_path)
    return train_path, query_path


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "fig6" in out

    def test_run_fig3(self, capsys):
        assert main(["run", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "0.75" in out and "True" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "tableXX"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "BST for class Cancer" in out
        assert "classified as Cancer" in out

    def test_run_with_options(self, capsys):
        code = main(
            ["run", "fig2", "--tests", "1", "--topk-cutoff", "1", "--seed", "2"]
        )
        assert code == 0
        assert "g6" in capsys.readouterr().out


class TestPredictCommand:
    def test_predict_from_training_data(self, capsys, relational_files):
        train_path, query_path = relational_files
        code = main(
            ["predict", "--train", str(train_path), "--data", str(query_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        for name in ("qa", "qb", "qc", "qd"):
            assert name in out
        assert "engine counters" in out

    def test_artifact_round_trip_matches_train(
        self, capsys, tmp_path, relational_files
    ):
        train_path, query_path = relational_files
        artifact = tmp_path / "model.npz"
        assert (
            main(
                [
                    "predict",
                    "--train",
                    str(train_path),
                    "--data",
                    str(query_path),
                    "--save-artifact",
                    str(artifact),
                ]
            )
            == 0
        )
        fitted_out = capsys.readouterr().out
        assert "artifact written" in fitted_out
        assert artifact.exists()

        clear_evaluator_cache()
        assert (
            main(
                ["predict", "--artifact", str(artifact), "--data", str(query_path)]
            )
            == 0
        )
        loaded_out = capsys.readouterr().out
        assert "artifact_loads" in loaded_out

        def predictions(text):
            return [
                line
                for line in text.splitlines()
                if line.startswith(("qa", "qb", "qc", "qd"))
            ]

        assert predictions(loaded_out) == predictions(fitted_out)

    def test_fingerprint_mismatch_fails(self, capsys, tmp_path, relational_files):
        train_path, query_path = relational_files
        artifact = tmp_path / "model.npz"
        main(
            [
                "predict",
                "--train",
                str(train_path),
                "--data",
                str(query_path),
                "--save-artifact",
                str(artifact),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "predict",
                "--artifact",
                str(artifact),
                "--data",
                str(query_path),
                "--expect-fingerprint",
                "0" * 40,
            ]
        )
        assert code == 4
        assert "stale" in capsys.readouterr().err

    def test_missing_artifact_fails(self, capsys, tmp_path, relational_files):
        _, query_path = relational_files
        code = main(
            [
                "predict",
                "--artifact",
                str(tmp_path / "absent.npz"),
                "--data",
                str(query_path),
            ]
        )
        assert code == 2
        assert "no such artifact" in capsys.readouterr().err

    def test_item_vocabulary_mismatch_fails(
        self, capsys, tmp_path, relational_files
    ):
        train_path, _ = relational_files
        rng = np.random.default_rng(23)
        narrow = RelationalDataset.from_bool_matrix(
            rng.random((2, 7)) < 0.5, labels=(0, 1)
        )
        narrow_path = tmp_path / "narrow.json"
        save_relational_json(narrow, narrow_path)
        code = main(
            ["predict", "--train", str(train_path), "--data", str(narrow_path)]
        )
        assert code == 2
        assert "7 items" in capsys.readouterr().err

    def test_evaluator_cache_size_flag(self, capsys, relational_files):
        train_path, query_path = relational_files
        try:
            code = main(
                [
                    "--evaluator-cache-size",
                    "3",
                    "predict",
                    "--train",
                    str(train_path),
                    "--data",
                    str(query_path),
                ]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert "evaluator_cache_capacity" in out
            assert "3" in out.split("evaluator_cache_capacity", 1)[1].splitlines()[0]
            assert "evaluator_cache_entries" in out
        finally:
            set_evaluator_cache_size(8)
            clear_evaluator_cache()

    def test_invalid_cache_size(self, capsys):
        code = main(["--evaluator-cache-size", "0", "list"])
        # 'list' short-circuits before the flag applies; use predict path.
        assert code == 0
        capsys.readouterr()
        code = main(
            ["--evaluator-cache-size", "0", "predict", "--train", "x", "--data", "y"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestServeBenchCommand:
    def test_serve_bench_from_artifact(self, capsys, tmp_path, relational_files):
        train_path, query_path = relational_files
        artifact = tmp_path / "model.npz"
        main(
            [
                "predict",
                "--train",
                str(train_path),
                "--data",
                str(query_path),
                "--save-artifact",
                str(artifact),
            ]
        )
        capsys.readouterr()
        clear_evaluator_cache()
        code = main(
            [
                "serve-bench",
                "--artifact",
                str(artifact),
                "--threads",
                "4",
                "--requests",
                "16",
                "--max-batch",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serial" in out and "service" in out and "speedup" in out
        assert "service_batches" in out
        assert "max_service_batch" in out
        assert "service_latency_seconds" in out

    def test_serve_bench_from_training_data(self, capsys, relational_files):
        train_path, _ = relational_files
        code = main(
            [
                "serve-bench",
                "--train",
                str(train_path),
                "--threads",
                "2",
                "--requests",
                "8",
                "--query-items",
                "5",
            ]
        )
        assert code == 0
        assert "q/s" in capsys.readouterr().out


def _saved_artifact(tmp_path, relational_files, capsys):
    train_path, query_path = relational_files
    artifact = tmp_path / "model.npz"
    assert (
        main(
            [
                "predict",
                "--train",
                str(train_path),
                "--data",
                str(query_path),
                "--save-artifact",
                str(artifact),
            ]
        )
        == 0
    )
    capsys.readouterr()
    clear_evaluator_cache()
    return artifact, train_path, query_path


@pytest.mark.faults
class TestExitCodes:
    """Failure classes map to distinct non-zero exit codes (scripts/CI can
    branch on them): 2 generic, 3 corrupt, 4 stale, 5 overload."""

    def test_corrupt_artifact_exits_3_and_quarantines(
        self, capsys, tmp_path, relational_files
    ):
        from repro.testing import corrupt_artifact_member

        artifact, _, query_path = _saved_artifact(
            tmp_path, relational_files, capsys
        )
        corrupt_artifact_member(artifact, "meta_fingerprint.npy")
        code = main(
            ["predict", "--artifact", str(artifact), "--data", str(query_path)]
        )
        assert code == 3
        assert "corrupt" in capsys.readouterr().err
        assert not artifact.exists()  # default policy quarantined it
        quarantine = artifact.with_name(artifact.name + ".quarantine")
        assert (quarantine / artifact.name).exists()

    def test_corrupt_artifact_on_corrupt_fail_keeps_file(
        self, capsys, tmp_path, relational_files
    ):
        from repro.testing import corrupt_artifact_member

        artifact, _, query_path = _saved_artifact(
            tmp_path, relational_files, capsys
        )
        corrupt_artifact_member(artifact, "meta_fingerprint.npy")
        code = main(
            [
                "predict",
                "--artifact",
                str(artifact),
                "--data",
                str(query_path),
                "--on-corrupt",
                "fail",
            ]
        )
        assert code == 3
        assert artifact.exists()

    def test_corrupt_artifact_rebuilds_from_train(
        self, capsys, tmp_path, relational_files
    ):
        from repro.testing import corrupt_artifact_member

        artifact, train_path, query_path = _saved_artifact(
            tmp_path, relational_files, capsys
        )
        corrupt_artifact_member(artifact, "meta_fingerprint.npy")
        code = main(
            [
                "predict",
                "--artifact",
                str(artifact),
                "--train",
                str(train_path),
                "--data",
                str(query_path),
                "--on-corrupt",
                "rebuild",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "qa" in out
        assert "artifact_rebuilds" in out

    def test_artifact_and_train_conflict_without_rebuild(
        self, capsys, tmp_path, relational_files
    ):
        artifact, train_path, query_path = _saved_artifact(
            tmp_path, relational_files, capsys
        )
        code = main(
            [
                "predict",
                "--artifact",
                str(artifact),
                "--train",
                str(train_path),
                "--data",
                str(query_path),
            ]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_neither_artifact_nor_train(self, capsys, relational_files):
        _, query_path = relational_files
        code = main(["predict", "--data", str(query_path)])
        assert code == 2
        assert "required" in capsys.readouterr().err

    def test_overloaded_serve_bench_exits_5(
        self, capsys, tmp_path, relational_files, monkeypatch
    ):
        import repro.serving as serving
        from repro.errors import ServiceOverloaded

        artifact, _, _ = _saved_artifact(tmp_path, relational_files, capsys)

        class AlwaysOverloaded(serving.PredictionService):
            def _check_admission(self, now):
                raise ServiceOverloaded(depth=99, high_water=1)

        monkeypatch.setattr(serving, "PredictionService", AlwaysOverloaded)
        code = main(
            [
                "serve-bench",
                "--artifact",
                str(artifact),
                "--threads",
                "2",
                "--requests",
                "8",
            ]
        )
        assert code == 5
        assert "overloaded" in capsys.readouterr().err
