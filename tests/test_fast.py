"""Property tests: the vectorized BSTCE engine equals the reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bst.table import build_all_bsts
from repro.core.bstce import bstce
from repro.core.fast import FastBSTCEvaluator
from repro.datasets.dataset import RelationalDataset


@st.composite
def relational_datasets(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    m = draw(st.integers(min_value=1, max_value=12))
    k = draw(st.integers(min_value=2, max_value=3))
    rows = [
        frozenset(
            j
            for j in range(m)
            if draw(st.booleans())
        )
        for _ in range(n)
    ]
    labels = [draw(st.integers(min_value=0, max_value=k - 1)) for _ in range(n)]
    ds = RelationalDataset(
        item_names=tuple(f"g{j}" for j in range(m)),
        class_names=tuple(f"c{i}" for i in range(k)),
        samples=tuple(rows),
        labels=tuple(labels),
    )
    query = frozenset(j for j in range(m) if draw(st.booleans()))
    return ds, query


class TestEngineEquivalence:
    @given(relational_datasets())
    @settings(max_examples=150, deadline=None)
    def test_fast_matches_reference_min(self, case):
        ds, query = case
        fast = FastBSTCEvaluator(ds, "min")
        bsts = build_all_bsts(ds)
        for class_id in range(ds.n_classes):
            expected = bstce(bsts[class_id], query, "min")
            actual = fast.class_value(class_id, query)
            assert actual == pytest.approx(expected, abs=1e-5)

    @given(relational_datasets())
    @settings(max_examples=60, deadline=None)
    def test_fast_matches_reference_product_and_mean(self, case):
        ds, query = case
        for arith in ("product", "mean"):
            fast = FastBSTCEvaluator(ds, arith)
            bsts = build_all_bsts(ds)
            for class_id in range(ds.n_classes):
                expected = bstce(bsts[class_id], query, arith)
                actual = fast.class_value(class_id, query)
                assert actual == pytest.approx(expected, abs=1e-5)

    @given(relational_datasets())
    @settings(max_examples=100, deadline=None)
    def test_values_bounded(self, case):
        ds, query = case
        fast = FastBSTCEvaluator(ds, "min")
        values = fast.classification_values(query)
        assert ((values >= 0.0) & (values <= 1.0)).all()


class TestQueryHandling:
    def test_vector_query(self, example):
        fast = FastBSTCEvaluator(example)
        vec = np.zeros(example.n_items, dtype=bool)
        vec[[0, 3, 4]] = True
        assert fast.class_value(0, vec) == pytest.approx(0.75)

    def test_wrong_vector_shape_raises(self, example):
        fast = FastBSTCEvaluator(example)
        with pytest.raises(ValueError):
            fast.class_value(0, np.zeros(3, dtype=bool))

    def test_out_of_range_items_ignored(self, example):
        fast = FastBSTCEvaluator(example)
        assert fast.class_value(0, frozenset({0, 3, 4, 999})) == pytest.approx(
            0.75
        )

    def test_unknown_arithmetization_rejected(self, example):
        with pytest.raises(ValueError):
            FastBSTCEvaluator(example, "median")

    def test_single_class_dataset(self):
        """All samples one class: every cell is a black dot, value 1 for any
        overlapping query."""
        ds = RelationalDataset(
            item_names=("a", "b"),
            class_names=("only",),
            samples=(frozenset({0}), frozenset({0, 1})),
            labels=(0, 0),
        )
        fast = FastBSTCEvaluator(ds)
        assert fast.class_value(0, frozenset({0})) == 1.0
