"""Compiled evaluation plans: bit-identity vs the legacy kernel, the
duplicate-row cull, dtype-downcast overflow guards, arena structure, and the
v1 artifact fallback."""

import warnings

import numpy as np
import pytest

from conftest import random_relational
from repro.bst.culling import duplicate_row_keep_mask
from repro.core.arithmetization import COMBINERS
from repro.core.artifact import load_artifact, save_artifact
from repro.core.classifier import BSTClassifier
from repro.core.fast import FastBSTCEvaluator, _class_tables_for, clear_evaluator_cache
from repro.core import plan as plan_module
from repro.core.plan import (
    ARENA_FIELDS,
    FLOAT32_EXACT_MAX,
    compile_plan_from_tables,
    tables_hot_nbytes,
)
from repro.datasets.dataset import RelationalDataset
from repro.evaluation.timing import engine_counters


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_evaluator_cache()
    yield
    clear_evaluator_cache()


def _with_duplicates(rng, n_samples=10, n_items=16, n_classes=3):
    """A random dataset whose outside blocks contain exact-duplicate rows,
    so the min-plan cull has something to drop."""
    while True:
        matrix = rng.random((n_samples, n_items)) < rng.uniform(0.2, 0.7)
        matrix[1] = matrix[0]
        matrix[2] = matrix[0]
        labels = rng.integers(0, n_classes, n_samples)
        labels[0] = labels[1] = labels[2] = 0
        if len(set(labels.tolist())) == n_classes:
            return RelationalDataset.from_bool_matrix(
                matrix,
                labels.tolist(),
                class_names=[f"c{i}" for i in range(n_classes)],
            )


class TestBitIdentity:
    """The compiled plan must reproduce the legacy kernel bit for bit —
    not approximately — across arithmetizations, batch sizes, sparsity
    regimes, and culled duplicate rows."""

    @pytest.mark.parametrize("arithmetization", sorted(COMBINERS))
    def test_random_datasets(self, arithmetization):
        rng = np.random.default_rng(42)
        for _ in range(8):
            dataset = random_relational(rng)
            legacy = FastBSTCEvaluator(
                dataset, arithmetization, compile_plan=False
            )
            planned = FastBSTCEvaluator(dataset, arithmetization)
            queries = rng.random((17, dataset.n_items)) < rng.uniform(0.1, 0.7)
            assert np.array_equal(
                legacy.classification_values_batch(queries),
                planned.classification_values_batch(queries),
            )
            for query in queries[:3]:
                assert np.array_equal(
                    legacy.classification_values(query),
                    planned.classification_values(query),
                )

    @pytest.mark.parametrize("arithmetization", sorted(COMBINERS))
    def test_duplicate_rows(self, arithmetization):
        rng = np.random.default_rng(7)
        for _ in range(5):
            dataset = _with_duplicates(rng)
            legacy = FastBSTCEvaluator(
                dataset, arithmetization, compile_plan=False
            )
            planned = FastBSTCEvaluator(dataset, arithmetization)
            queries = rng.random((9, dataset.n_items)) < 0.5
            assert np.array_equal(
                legacy.classification_values_batch(queries),
                planned.classification_values_batch(queries),
            )

    def test_sparse_serving_queries(self):
        # Wide vocabulary + sparse queries drives the per-query restricted
        # matmul path; the skipped zero terms must not change a bit.
        rng = np.random.default_rng(3)
        matrix = rng.random((24, 600)) < 0.15
        labels = rng.integers(0, 3, 24)
        labels[:3] = (0, 1, 2)
        dataset = RelationalDataset.from_bool_matrix(
            matrix, labels.tolist(), class_names=["a", "b", "c"]
        )
        legacy = FastBSTCEvaluator(dataset, compile_plan=False)
        planned = FastBSTCEvaluator(dataset)
        queries = rng.random((32, 600)) < 0.02  # ~12 genes per query
        assert np.array_equal(
            legacy.classification_values_batch(queries),
            planned.classification_values_batch(queries),
        )
        # Dense batch takes the stacked path; also bit-identical.
        dense = rng.random((8, 600)) < 0.6
        assert np.array_equal(
            legacy.classification_values_batch(dense),
            planned.classification_values_batch(dense),
        )


class TestCulling:
    def test_duplicate_row_keep_mask(self):
        matrix = np.array(
            [[1, 0], [1, 0], [0, 1], [1, 0], [0, 0]], dtype=bool
        )
        keep = duplicate_row_keep_mask(matrix)
        assert keep.tolist() == [True, False, True, False, True]
        assert duplicate_row_keep_mask(np.zeros((0, 3), dtype=bool)).size == 0

    def test_min_plan_culls_duplicates(self):
        rng = np.random.default_rng(11)
        dataset = _with_duplicates(rng)
        planned = FastBSTCEvaluator(dataset, "min")
        assert planned.plan.culled_refs > 0
        # The culled stream must still produce bit-identical values.
        legacy = FastBSTCEvaluator(dataset, "min", compile_plan=False)
        queries = rng.random((8, dataset.n_items)) < 0.5
        assert np.array_equal(
            legacy.classification_values_batch(queries),
            planned.classification_values_batch(queries),
        )

    @pytest.mark.parametrize("arithmetization", ["product", "mean"])
    def test_non_idempotent_arithmetizations_keep_full_stream(
        self, arithmetization
    ):
        # Dropping a duplicate changes a product/mean; those plans must not
        # cull anything.
        rng = np.random.default_rng(13)
        dataset = _with_duplicates(rng)
        planned = FastBSTCEvaluator(dataset, arithmetization)
        assert planned.plan.culled_refs == 0

    def test_culled_refs_counter(self):
        rng = np.random.default_rng(17)
        dataset = _with_duplicates(rng)
        before = engine_counters.get("plan_culled_refs")
        planned = FastBSTCEvaluator(dataset, "min")
        assert (
            engine_counters.get("plan_culled_refs")
            == before + planned.plan.culled_refs
        )

    def test_explain_identical_under_culling(self):
        # The satellite check: a culled plan serves the same classification
        # values, so the explanation machinery reports identical evidence.
        rng = np.random.default_rng(19)
        dataset = _with_duplicates(rng)
        clf = BSTClassifier().fit(dataset)
        assert clf._fast.plan.culled_refs > 0
        query = frozenset(
            int(i) for i in np.flatnonzero(rng.random(dataset.n_items) < 0.5)
        )
        explained_plan = clf.explain(query)
        legacy = FastBSTCEvaluator(dataset, compile_plan=False)
        original_fast = clf._fast
        try:
            clf._fast = legacy
            explained_legacy = clf.explain(query)
        finally:
            clf._fast = original_fast
        assert explained_plan == explained_legacy


class TestDowncastGuards:
    def test_small_data_downcasts(self):
        rng = np.random.default_rng(23)
        dataset = random_relational(rng)
        planned = FastBSTCEvaluator(dataset)
        assert planned.plan.index_dtype == np.dtype(np.int32)
        assert planned.plan.weight_dtype == np.dtype(np.float32)
        assert planned.plan.arena["h_flat"].dtype == np.dtype(np.int32)
        assert planned.plan.arena["pair_len"].dtype == np.dtype(np.float32)

    def test_boundary_values_stay_exact_in_float32(self):
        # Every representable pair length at or below 2**24 must survive
        # the downcast exactly.
        lengths = np.array(
            [1, 2, FLOAT32_EXACT_MAX - 1, FLOAT32_EXACT_MAX], dtype=np.float64
        )
        assert np.array_equal(
            lengths.astype(np.float32).astype(np.float64), lengths
        )

    def test_wide_index_fallback(self, monkeypatch):
        # Force the guard: with the int32 ceiling lowered to zero, every
        # index lands in the wide dtype (counted), and the kernel output is
        # still bit-identical — the fallback is a widening, never a wrap.
        rng = np.random.default_rng(29)
        dataset = random_relational(rng)
        monkeypatch.setattr(plan_module, "INT32_MAX", 0)
        before = engine_counters.get("plan_wide_index_fallbacks")
        planned = FastBSTCEvaluator(dataset)
        assert planned.plan.index_dtype == np.dtype(np.int64)
        assert engine_counters.get("plan_wide_index_fallbacks") == before + 1
        monkeypatch.undo()
        legacy = FastBSTCEvaluator(dataset, compile_plan=False)
        queries = rng.random((9, dataset.n_items)) < 0.4
        assert np.array_equal(
            legacy.classification_values_batch(queries),
            planned.classification_values_batch(queries),
        )

    def test_wide_weight_fallback_preserves_large_lengths(self):
        # Pair lengths past 2**24 would silently round in float32; the
        # compiler must store them in float64 instead, exactly.
        rng = np.random.default_rng(31)
        dataset = random_relational(rng)
        matrix = dataset.bool_matrix
        labels = dataset.label_array
        tables = []
        big = float(FLOAT32_EXACT_MAX) + 3.0  # not float32-representable
        for class_id in range(dataset.n_classes):
            member = labels == class_id
            t = _class_tables_for(
                class_id, matrix[member], matrix[~member], dataset.n_items
            )
            t.len_pos = t.len_pos.astype(np.float64) + big
            t.len_neg = t.len_neg.astype(np.float64) + big
            tables.append(t)
        before = engine_counters.get("plan_wide_float_fallbacks")
        plan = compile_plan_from_tables(tables, dataset.n_items, "min")
        assert plan.weight_dtype == np.dtype(np.float64)
        assert engine_counters.get("plan_wide_float_fallbacks") == before + 1
        pc = plan.classes[0]
        expected = np.where(
            tables[0].negated, tables[0].len_neg, tables[0].len_pos
        )
        assert np.array_equal(np.asarray(pc.pair_len), expected)
        # The same values forced through float32 would NOT round-trip —
        # i.e. the narrow dtype really would have been lossy here.
        assert not np.array_equal(
            expected.astype(np.float32).astype(np.float64), expected
        )

    @pytest.mark.parametrize("arithmetization", sorted(COMBINERS))
    def test_fused_pair_weights_match_legacy(self, arithmetization):
        # pair_len/pair_neg must encode exactly the legacy selection:
        # negated -> len_neg, positive -> len_pos, empty -> 0.
        rng = np.random.default_rng(37)
        dataset = random_relational(rng)
        legacy = FastBSTCEvaluator(
            dataset, arithmetization, compile_plan=False
        )
        planned = FastBSTCEvaluator(dataset, arithmetization)
        for t, pc in zip(legacy._tables, planned.plan.classes):
            if t is None:
                assert pc is None
                continue
            expected = np.where(t.negated, t.len_neg, t.len_pos)
            expected[t.empty] = 0.0
            assert np.array_equal(np.asarray(pc.pair_len), expected)
            assert np.array_equal(np.asarray(pc.pair_neg), t.negated)


class TestArenaStructure:
    def test_views_share_arena_memory(self):
        rng = np.random.default_rng(41)
        dataset = random_relational(rng)
        plan = FastBSTCEvaluator(dataset).plan
        for pc in plan.classes:
            if pc is None:
                continue
            for name in ARENA_FIELDS:
                view = getattr(pc, name)
                if view.size:
                    assert np.shares_memory(view, plan.arena[name])

    def test_geometry_covers_every_class(self):
        dataset = RelationalDataset(
            item_names=("a", "b", "c"),
            class_names=("x", "y", "z"),
            samples=(frozenset({0, 1}), frozenset({2})),
            labels=(0, 2),
        )
        plan = FastBSTCEvaluator(dataset).plan
        assert plan.geometry.shape == (3, 4)
        assert plan.classes[1] is None
        assert tuple(plan.geometry[1]) == (0, 0, 0, 0)

    def test_plan_is_smaller_than_tables(self):
        # The bytes-per-query reduction the bench gates: fused pair weights
        # + downcast indices + the dropped inside_sizes field must shrink
        # the kernel-hot footprint.
        rng = np.random.default_rng(43)
        matrix = rng.random((40, 300)) < 0.3
        labels = rng.integers(0, 3, 40)
        labels[:3] = (0, 1, 2)
        dataset = RelationalDataset.from_bool_matrix(
            matrix, labels.tolist(), class_names=["a", "b", "c"]
        )
        legacy = FastBSTCEvaluator(dataset, compile_plan=False)
        planned = FastBSTCEvaluator(dataset)
        assert planned.plan.hot_nbytes() < tables_hot_nbytes(legacy._tables)

    def test_legacy_evaluator_compiles_plan_on_demand(self):
        rng = np.random.default_rng(47)
        dataset = random_relational(rng)
        legacy = FastBSTCEvaluator(dataset, compile_plan=False)
        assert legacy.plan is None
        compiled = legacy._ensure_plan()
        assert legacy.plan is compiled
        # Dispatch still prefers the legacy tables (the bench baseline must
        # not silently switch kernels after a save).
        assert legacy._per_class() is legacy._tables


class TestArtifactV1Fallback:
    def test_v1_round_trip_warns_and_recompiles(self, tmp_path):
        rng = np.random.default_rng(53)
        dataset = _with_duplicates(rng)
        evaluator = FastBSTCEvaluator(dataset)
        path = save_artifact(evaluator, tmp_path / "m1.npz", format_version=1)
        before = engine_counters.get("artifact_v1_recompiles")
        with pytest.warns(DeprecationWarning, match="format v1"):
            loaded = load_artifact(path)
        assert engine_counters.get("artifact_v1_recompiles") == before + 1
        assert loaded.plan is not None
        queries = rng.random((8, dataset.n_items)) < 0.4
        assert np.array_equal(
            evaluator.classification_values_batch(queries),
            loaded.classification_values_batch(queries),
        )

    def test_v2_round_trip_does_not_warn(self, tmp_path):
        rng = np.random.default_rng(59)
        dataset = random_relational(rng)
        evaluator = FastBSTCEvaluator(dataset)
        path = save_artifact(evaluator, tmp_path / "m2.npz")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            loaded = load_artifact(path)
        assert loaded.plan.culled_refs == evaluator.plan.culled_refs

    def test_v1_from_plan_only_evaluator(self, tmp_path):
        # A plan-only (artifact-loaded) evaluator can still export v1: the
        # legacy tables are rebuilt from the arena's row blocks.
        rng = np.random.default_rng(61)
        dataset = random_relational(rng)
        first = save_artifact(
            FastBSTCEvaluator(dataset), tmp_path / "a.npz"
        )
        loaded = load_artifact(first)
        assert loaded._tables is None
        second = save_artifact(loaded, tmp_path / "b.npz", format_version=1)
        with pytest.warns(DeprecationWarning):
            reloaded = load_artifact(second)
        queries = rng.random((6, dataset.n_items)) < 0.4
        assert np.array_equal(
            loaded.classification_values_batch(queries),
            reloaded.classification_values_batch(queries),
        )

    def test_unknown_format_version_rejected(self, tmp_path):
        rng = np.random.default_rng(67)
        dataset = random_relational(rng)
        with pytest.raises(ValueError, match="format_version"):
            save_artifact(
                FastBSTCEvaluator(dataset), tmp_path / "x.npz",
                format_version=3,
            )
