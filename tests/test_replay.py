"""The replay harness: deterministic traces, exactly-once accounting,
chaos mixes, counter reconciliation, and the hardened gateway surface.

The load-bearing test is :class:`TestChaosReplay`: a seeded fault-heavy
trace (poison queries, a deadline storm, a corrupt hot-swap attempt, a
breaker-tripping error window, tenant quota pressure) where the client's
per-category accounting must sum *exactly* to the number of submitted
requests — zero lost, zero duplicated — and every client-visible refusal
must match the service's own counters one for one.
"""

from __future__ import annotations

import json
import signal
import socket
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.core.classifier import BSTClassifier
from repro.datasets.dataset import running_example
from repro.errors import TraceError
from repro.evaluation.timing import EngineCounters
from repro.replay import (
    CATEGORIES,
    ChaosMix,
    HttpTarget,
    LatencyHistogram,
    ReplayDriver,
    ReplayTrace,
    Slo,
    TraceConfig,
    config_from_header,
    dumps_trace,
    generate_trace,
    load_trace,
    prepare_inprocess_target,
    reconcile,
    search_capacity,
    write_trace,
)
from repro.serving import (
    GatewayServer,
    ModelRegistry,
    ServeConfig,
)
from repro.testing.faults import FlakyBatchModel, ServiceFault


@pytest.fixture(scope="module")
def classifier():
    return BSTClassifier().fit(running_example())


def _replay(trace, classifier, tmp_path, *, tenant_quota=None, config=None,
            speed=0.0, max_workers=32):
    target = prepare_inprocess_target(
        trace, classifier, tmp_path, tenant_quota=tenant_quota, config=config
    )
    try:
        return ReplayDriver(target, max_workers=max_workers).run(
            trace, speed=speed
        )
    finally:
        target.registry.close()


# ----------------------------------------------------------------------
# Trace generation and serialization
# ----------------------------------------------------------------------


class TestTraceGeneration:
    def test_byte_identical_across_runs(self):
        config = TraceConfig(seed=7, requests=250, rate_qps=500, n_items=6)
        assert dumps_trace(generate_trace(config)) == dumps_trace(
            generate_trace(config)
        )

    def test_different_seeds_differ(self):
        a = TraceConfig(seed=1, requests=50, n_items=6)
        b = TraceConfig(seed=2, requests=50, n_items=6)
        assert dumps_trace(generate_trace(a)) != dumps_trace(
            generate_trace(b)
        )

    @pytest.mark.parametrize(
        "arrival", ["uniform", "poisson", "diurnal", "burst"]
    )
    def test_arrivals_sorted_and_deterministic(self, arrival):
        config = TraceConfig(
            seed=3, requests=120, rate_qps=800, arrival=arrival, n_items=6
        )
        trace = generate_trace(config)
        times = [e["at_ms"] for e in trace.events]
        assert times == sorted(times)
        assert len(trace.requests) == 120
        assert dumps_trace(trace) == dumps_trace(generate_trace(config))

    def test_poison_marker_is_unambiguous(self):
        config = TraceConfig(
            seed=5,
            requests=300,
            n_items=6,
            chaos=ChaosMix(poison_fraction=0.2),
        )
        trace = generate_trace(config)
        poisoned = [e for e in trace.requests if e["poison"]]
        assert poisoned, "a 20% poison fraction over 300 requests fired"
        for event in trace.requests:
            if event["poison"]:
                assert event["items"] == list(range(6))
            else:
                # Normal queries always leave a gene unexpressed, so the
                # all-genes poison predicate can never match them.
                assert len(event["items"]) < 6

    def test_deadline_storm_rewrites_window(self):
        storm = (100.0, 200.0, 0.0)
        config = TraceConfig(
            seed=9,
            requests=400,
            rate_qps=2000,
            n_items=6,
            chaos=ChaosMix(deadline_storms=(storm,)),
        )
        trace = generate_trace(config)
        inside = [
            e for e in trace.requests if 100.0 <= e["at_ms"] < 200.0
        ]
        outside = [
            e for e in trace.requests
            if not (100.0 <= e["at_ms"] < 200.0)
        ]
        assert inside, "the storm window saw traffic"
        assert all(e["deadline_ms"] == 0.0 for e in inside)
        assert all("deadline_ms" not in e for e in outside)

    def test_tenant_and_verb_mixes(self):
        config = TraceConfig(
            seed=4,
            requests=400,
            n_items=6,
            tenants=("a", "b"),
            explain_fraction=0.5,
        )
        trace = generate_trace(config)
        tenants = {e["tenant"] for e in trace.requests}
        verbs = {e["verb"] for e in trace.requests}
        assert tenants == {"a", "b"}
        assert verbs == {"predict", "explain"}

    def test_kill_controls_and_v2_schema(self):
        from repro.replay import TRACE_SCHEMA

        config = TraceConfig(
            seed=5,
            requests=40,
            rate_qps=400,
            n_items=6,
            chaos=ChaosMix(kills_at_ms=(50.0,)),
        )
        trace = generate_trace(config)
        assert trace.header["schema"] == TRACE_SCHEMA == "repro.replay/2"
        kills = [
            e
            for e in trace.events
            if e["kind"] == "control" and e["action"] == "kill"
        ]
        assert [k["at_ms"] for k in kills] == [50.0]
        rebuilt = config_from_header(trace.header)
        assert rebuilt.chaos.kills_at_ms == (50.0,)
        assert dumps_trace(generate_trace(rebuilt)) == dumps_trace(trace)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(requests=0)
        with pytest.raises(ValueError):
            TraceConfig(arrival="carrier-pigeon")
        with pytest.raises(ValueError):
            TraceConfig(n_items=1)
        with pytest.raises(ValueError):
            TraceConfig(n_items=6, items_per_query=6)
        with pytest.raises(ValueError):
            ChaosMix(poison_fraction=1.5)
        with pytest.raises(ValueError):
            ChaosMix(deadline_storms=((5.0, 5.0, 1.0),))
        with pytest.raises(ValueError):
            ChaosMix(error_windows=((0, 0),))
        with pytest.raises(ValueError):
            ChaosMix(kills_at_ms=(-1.0,))


class TestTraceIO:
    def test_round_trip(self, tmp_path):
        config = TraceConfig(
            seed=7,
            requests=80,
            n_items=6,
            tenants=("a",),
            chaos=ChaosMix(poison_fraction=0.1, swaps_at_ms=(20.0,)),
        )
        trace = generate_trace(config)
        path = write_trace(trace, tmp_path / "trace.jsonl")
        loaded = load_trace(path)
        assert loaded.header == trace.header
        assert loaded.events == trace.events
        assert dumps_trace(loaded) == dumps_trace(trace)

    def test_config_from_header_round_trip(self):
        config = TraceConfig(
            seed=13,
            requests=40,
            rate_qps=123.0,
            arrival="burst",
            n_items=6,
            tenants=("x", "y"),
            explain_fraction=0.25,
            deadline_ms=50.0,
            chaos=ChaosMix(poison_fraction=0.05),
        )
        rebuilt = config_from_header(generate_trace(config).header)
        assert rebuilt.seed == 13
        assert rebuilt.arrival == "burst"
        assert rebuilt.tenants == ("x", "y")
        assert rebuilt.chaos.poison_fraction == 0.05
        assert dumps_trace(generate_trace(rebuilt)) == dumps_trace(
            generate_trace(config)
        )

    def test_malformed_traces_raise(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TraceError):
            load_trace(path)
        path.write_text('{"kind":"request","id":"r0"}\n')
        with pytest.raises(TraceError, match="header"):
            load_trace(path)
        header = '{"kind":"header","schema":"repro.replay/999"}\n'
        path.write_text(header)
        with pytest.raises(TraceError, match="schema"):
            load_trace(path)
        header = '{"kind":"header","schema":"repro.replay/1"}\n'
        event = '{"kind":"request","id":"r0","at_ms":0,"model":"m","verb":"predict","items":[]}\n'
        path.write_text(header + event + event)
        with pytest.raises(TraceError, match="repeats"):
            load_trace(path)
        path.write_text(
            header
            + '{"kind":"request","id":"r0","at_ms":0,"model":"m","verb":"dance","items":[]}\n'
        )
        with pytest.raises(TraceError, match="verb"):
            load_trace(path)

    def test_v1_trace_still_loads(self, tmp_path):
        # Traces recorded before the kill-control schema bump must keep
        # replaying byte for byte.
        path = tmp_path / "v1.jsonl"
        path.write_text(
            '{"kind":"header","schema":"repro.replay/1","events":2}\n'
            '{"kind":"request","id":"r0","at_ms":0,"model":"m",'
            '"verb":"predict","items":[0]}\n'
            '{"kind":"control","id":"c0","at_ms":5,"action":"swap"}\n'
        )
        trace = load_trace(path)
        assert trace.header["schema"] == "repro.replay/1"
        assert len(trace.events) == 2

    def test_unknown_control_action_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"kind":"header","schema":"repro.replay/2","events":1}\n'
            '{"kind":"control","id":"c0","at_ms":5,"action":"dance"}\n'
        )
        with pytest.raises(TraceError, match="action"):
            load_trace(path)

    def test_declared_event_count_enforced(self, tmp_path):
        trace = generate_trace(TraceConfig(seed=1, requests=10, n_items=6))
        lines = dumps_trace(trace).splitlines()
        path = tmp_path / "truncated.jsonl"
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(TraceError, match="declares"):
            load_trace(path)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


class TestLatencyHistogram:
    def test_percentiles_bracket_samples(self):
        histogram = LatencyHistogram()
        for ms in range(1, 101):
            histogram.record(ms / 1000.0)
        p50 = histogram.percentile(50.0)
        p99 = histogram.percentile(99.0)
        # Geometric buckets (ratio sqrt(2)) bound relative error.
        assert 0.035 <= p50 <= 0.075
        assert 0.07 <= p99 <= 0.15
        assert histogram.percentile(100.0) <= histogram.max
        assert len(histogram) == 100

    def test_empty_and_merge(self):
        empty = LatencyHistogram()
        assert empty.percentile(99.0) == 0.0
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(0.001)
        b.record(0.1)
        a.merge(b)
        assert len(a) == 2
        assert a.max == pytest.approx(0.1)

    def test_rejects_bad_percentile(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(101.0)


class TestReconcile:
    def test_clean_ledgers_reconcile(self):
        outcomes = {"answered": 8, "shed": 2}
        delta = {"service_shed": 2.0, "service_requests": 8.0}
        assert reconcile(outcomes, delta, 10) == []

    def test_lost_request_detected(self):
        mismatches = reconcile({"answered": 9}, None, 10)
        assert any("lost or duplicated" in m for m in mismatches)

    def test_counter_disagreement_detected(self):
        outcomes = {"answered": 9, "shed": 1}
        delta = {"service_shed": 3.0}
        mismatches = reconcile(outcomes, delta, 10)
        assert any("service_shed=3" in m for m in mismatches)

    def test_unknown_category_detected(self):
        mismatches = reconcile({"answered": 9, "wat": 1}, None, 10)
        assert any("unknown" in m for m in mismatches)


# ----------------------------------------------------------------------
# In-process replay
# ----------------------------------------------------------------------


class TestInProcessReplay:
    def test_clean_trace_all_answered(self, classifier, tmp_path):
        config = TraceConfig(seed=7, requests=200, rate_qps=2000, n_items=6)
        trace = generate_trace(config)
        report = _replay(trace, classifier, tmp_path)
        assert report.submitted == 200
        assert report.outcomes == {"answered": 200}
        assert report.reconciled, report.mismatches
        assert report.counters_delta["registry_requests"] == 200
        assert report.counters_delta["service_requests"] == 200

    def test_same_trace_same_accounting(self, classifier, tmp_path):
        config = TraceConfig(seed=7, requests=150, rate_qps=3000, n_items=6)
        first = _replay(
            generate_trace(config), classifier, tmp_path / "a"
        )
        second = _replay(
            generate_trace(config), classifier, tmp_path / "b"
        )
        assert first.outcomes == second.outcomes
        assert first.reconciled and second.reconciled

    def test_explain_verbs_answered(self, classifier, tmp_path):
        config = TraceConfig(
            seed=2, requests=60, n_items=6, explain_fraction=1.0
        )
        report = _replay(generate_trace(config), classifier, tmp_path)
        assert report.outcomes == {"answered": 60}
        assert report.reconciled

    def test_duplicate_outcome_raises(self, classifier, tmp_path):
        trace = generate_trace(TraceConfig(seed=1, requests=5, n_items=6))
        duplicated = ReplayTrace(
            header=trace.header,
            events=trace.events + (dict(trace.events[0]),),
        )
        with pytest.raises(TraceError, match="two outcomes"):
            _replay(duplicated, classifier, tmp_path)

    def test_out_of_range_items_are_rejected_exactly_once(
        self, classifier, tmp_path
    ):
        trace = generate_trace(TraceConfig(seed=1, requests=4, n_items=6))
        events = [dict(e) for e in trace.events]
        events[0]["items"] = [0, 99]  # outside the model's vocabulary
        bad = ReplayTrace(header=trace.header, events=tuple(events))
        report = _replay(bad, classifier, tmp_path)
        assert report.outcomes["rejected"] == 1
        assert report.outcomes["answered"] == 3
        assert report.reconciled, report.mismatches


class TestChaosReplay:
    """The tentpole invariant: a fault-heavy seeded trace loses nothing."""

    CHAOS = ChaosMix(
        poison_fraction=0.06,
        deadline_storms=((30.0, 70.0, 0.0),),
        corrupt_swaps_at_ms=(40.0,),
        swaps_at_ms=(80.0,),
        error_windows=((2, 8),),
    )

    def test_every_request_accounted_exactly_once(self, classifier, tmp_path):
        config = TraceConfig(
            seed=23,
            requests=400,
            rate_qps=4000,
            n_items=6,
            tenants=("t0", "t1", "t2"),
            chaos=self.CHAOS,
        )
        trace = generate_trace(config)
        report = _replay(
            trace,
            classifier,
            tmp_path,
            tenant_quota=4,
            config=ServeConfig(shed_high=64, shed_low=16),
        )
        assert report.submitted == 400
        # Exactly-once: the per-category tallies sum to the submissions.
        assert sum(report.outcomes.values()) == 400
        assert set(report.outcomes) <= set(CATEGORIES)
        # The chaos actually bit: every major ingredient left a mark.
        assert report.outcomes.get("poison", 0) > 0
        assert report.outcomes.get("deadline", 0) > 0
        assert report.outcomes.get("quota", 0) > 0
        # And the client ledger matches the service's own counters.
        assert report.reconciled, report.mismatches

    def test_corrupt_swap_refused_clean_swap_applied(
        self, classifier, tmp_path
    ):
        config = TraceConfig(
            seed=29,
            requests=120,
            rate_qps=2000,
            n_items=6,
            chaos=ChaosMix(
                corrupt_swaps_at_ms=(20.0,), swaps_at_ms=(40.0,)
            ),
        )
        report = _replay(generate_trace(config), classifier, tmp_path)
        by_action = {c["action"]: c for c in report.controls}
        assert not by_action["swap_corrupt"]["applied"]
        assert "ArtifactCorrupt" in by_action["swap_corrupt"]["detail"]
        assert by_action["swap"]["applied"]
        assert report.reconciled, report.mismatches
        # The refused swap reached the registry and was counted as such.
        assert report.counters_delta.get("registry_swaps") == 1

    def test_breaker_window_trips_and_reconciles(self, classifier, tmp_path):
        config = TraceConfig(
            seed=31,
            requests=300,
            rate_qps=6000,
            n_items=6,
            chaos=ChaosMix(error_windows=((0, 40),)),
        )
        report = _replay(
            generate_trace(config),
            classifier,
            tmp_path,
            config=ServeConfig(
                breaker_threshold=3, breaker_cooldown=30.0, max_batch=4
            ),
        )
        assert sum(report.outcomes.values()) == 300
        assert report.outcomes.get("breaker", 0) > 0
        assert report.reconciled, report.mismatches
        assert report.counters_delta.get("service_breaker_trips", 0) >= 1


class TestCapacitySearch:
    def test_ramp_reports_finite_saturation(self, classifier, tmp_path):
        base = TraceConfig(seed=7, requests=60, rate_qps=100.0, n_items=6)
        payload = search_capacity(
            classifier,
            base,
            tmp_path,
            slo=Slo(p99_ms=500.0, max_error_rate=0.05),
            start_qps=200.0,
            growth=2.0,
            max_rounds=2,
            chaos_error_window=6,
        )
        assert payload["schema"] == "repro.replay-bench/1"
        assert np.isfinite(payload["saturation_qps"])
        assert np.isfinite(payload["p99_ms_at_saturation"])
        assert payload["rounds"]
        assert all(r["reconciled"] for r in payload["rounds"])
        assert payload["chaos"]["reconciled"]
        assert np.isfinite(payload["chaos"]["p99_ms_under_breaker_trips"])


# ----------------------------------------------------------------------
# HTTP replay and the hardened gateway surface
# ----------------------------------------------------------------------


@pytest.fixture()
def gateway(classifier):
    registry = ModelRegistry(ServeConfig(), counters=EngineCounters())
    registry.deploy_model("default", classifier)
    server = GatewayServer(registry, max_body_bytes=64 * 1024)
    with server:
        yield server
    registry.close()


class TestHttpReplay:
    def test_http_target_accounts_exactly_once(self, gateway):
        config = TraceConfig(seed=7, requests=40, rate_qps=400, n_items=6)
        trace = generate_trace(config)
        report = ReplayDriver(
            HttpTarget(gateway.url), max_workers=8
        ).run(trace, speed=0.0)
        assert report.submitted == 40
        assert report.outcomes == {"answered": 40}
        assert report.reconciled
        assert report.counters_delta is None  # server counters unreachable

    def test_http_failure_categories(self, gateway):
        trace = generate_trace(TraceConfig(seed=1, requests=2, n_items=6))
        events = [dict(e) for e in trace.events]
        events[0]["items"] = [99]  # out of vocabulary -> 400 QueryError
        events[1]["model"] = "nope"  # -> 404 ModelNotFound
        report = ReplayDriver(HttpTarget(gateway.url), max_workers=2).run(
            ReplayTrace(header=trace.header, events=tuple(events))
        )
        assert report.outcomes == {"rejected": 1, "failed": 1}


ADMIN_TOKEN = "replay-admin-token"


@pytest.fixture()
def admin_gateway(classifier, tmp_path):
    """An admin-enabled gateway over an artifact-backed ``default`` slot,
    so HTTP replays get counter reconciliation and real hot swaps."""
    artifact = classifier.save(tmp_path / "served.npz")
    registry = ModelRegistry(ServeConfig(), counters=EngineCounters())
    registry.deploy("default", artifact)
    server = GatewayServer(registry, admin_token=ADMIN_TOKEN)
    with server:
        yield server
    registry.close()


class TestHttpAdminReplay:
    def test_counters_reconcile_over_the_wire(self, admin_gateway):
        # The satellite fix: with the admin plane, HTTP replays get the
        # same pair-by-pair counter ledger as in-process targets instead
        # of a silent None.
        config = TraceConfig(seed=7, requests=40, rate_qps=400, n_items=6)
        trace = generate_trace(config)
        target = HttpTarget(admin_gateway.url, admin_token=ADMIN_TOKEN)
        report = ReplayDriver(target, max_workers=8).run(trace, speed=0.0)
        assert report.outcomes == {"answered": 40}
        assert report.counters_delta is not None
        assert report.counters_delta["registry_requests"] == 40
        assert report.counters_delta["service_requests"] == 40
        assert report.reconciled, report.mismatches

    def test_swaps_applied_corrupt_refused_over_http(
        self, admin_gateway, classifier, tmp_path
    ):
        from repro.replay import prepare_http_target

        config = TraceConfig(
            seed=29,
            requests=80,
            rate_qps=800,
            n_items=6,
            chaos=ChaosMix(
                corrupt_swaps_at_ms=(20.0,), swaps_at_ms=(50.0,)
            ),
        )
        trace = generate_trace(config)
        target = prepare_http_target(
            trace,
            admin_gateway.url,
            tmp_path / "swap",
            classifier=classifier,
            admin_token=ADMIN_TOKEN,
        )
        report = ReplayDriver(target, max_workers=8).run(trace, speed=0.0)
        by_action = {c["action"]: c for c in report.controls}
        assert by_action["swap"]["applied"]
        assert "deployed v" in by_action["swap"]["detail"]
        assert not by_action["swap_corrupt"]["applied"]
        assert "refused" in by_action["swap_corrupt"]["detail"]
        # Lossless under the swap, and the counter ledger still matches.
        assert sum(report.outcomes.values()) == 80
        assert report.reconciled, report.mismatches
        assert report.counters_delta.get("registry_swaps", 0) >= 1

    def test_swaps_skipped_without_admin_token(self, admin_gateway):
        config = TraceConfig(
            seed=3,
            requests=20,
            rate_qps=400,
            n_items=6,
            chaos=ChaosMix(swaps_at_ms=(10.0,)),
        )
        trace = generate_trace(config)
        report = ReplayDriver(
            HttpTarget(admin_gateway.url), max_workers=4
        ).run(trace, speed=0.0)
        (control,) = report.controls
        assert not control["applied"]
        assert "admin plane" in control["detail"]
        assert report.reconciled


class TestKillChaos:
    def test_kill_skipped_in_process(self, classifier, tmp_path):
        config = TraceConfig(
            seed=11,
            requests=20,
            rate_qps=400,
            n_items=6,
            chaos=ChaosMix(kills_at_ms=(10.0,)),
        )
        report = _replay(generate_trace(config), classifier, tmp_path)
        (control,) = report.controls
        assert control["action"] == "kill"
        assert not control["applied"]
        assert "supervisor" in control["detail"]
        assert report.reconciled

    def test_kill_skipped_without_supervisor_handle(self, admin_gateway):
        config = TraceConfig(
            seed=11,
            requests=20,
            rate_qps=400,
            n_items=6,
            chaos=ChaosMix(kills_at_ms=(10.0,)),
        )
        report = ReplayDriver(
            HttpTarget(admin_gateway.url, admin_token=ADMIN_TOKEN),
            max_workers=4,
        ).run(generate_trace(config), speed=0.0)
        (control,) = report.controls
        assert not control["applied"]
        assert "supervisor" in control["detail"]
        assert report.reconciled

    @pytest.mark.faults
    def test_sigkill_mid_replay_accounts_exactly_once(
        self, classifier, tmp_path
    ):
        """Satellite (d): SIGKILL mid-batch through the supervisor.  The
        ledger must show connection-failure (``interrupted``) outcomes and
        zero lost or duplicated request ids across the restart."""
        from repro.replay import run_kill_chaos

        payload = run_kill_chaos(
            classifier, tmp_path, requests=60, rate_qps=10.0
        )
        assert payload["reconciled"], payload["mismatches"]
        assert payload["restarts"] >= 1
        assert payload["interrupted"] >= 1
        assert payload["outcomes"].get("answered", 0) >= 1
        assert sum(payload["outcomes"].values()) == 60
        (kill,) = [
            c for c in payload["controls"] if c["action"] == "kill"
        ]
        assert kill["applied"]
        assert payload["kill_mttr_s"] is not None
        assert 0.0 < payload["kill_mttr_s"] < 30.0


class TestShardedReplay:
    def test_shard_partition_is_total_and_deterministic(self):
        from repro.replay import shard_index, shard_trace

        config = TraceConfig(
            seed=7,
            requests=90,
            rate_qps=900,
            n_items=6,
            chaos=ChaosMix(swaps_at_ms=(30.0,)),
        )
        trace = generate_trace(config)
        shards = shard_trace(trace, 3)
        assert len(shards) == 3
        all_ids = sorted(e["id"] for e in trace.requests)
        sharded_ids = sorted(
            e["id"] for s in shards for e in s.requests
        )
        assert sharded_ids == all_ids  # nothing lost, nothing duplicated
        for index, shard in enumerate(shards):
            assert shard.header["events"] == len(shard.events)
            for event in shard.requests:
                assert shard_index(event["id"], 3) == index
        # Controls run once, on shard 0 only.
        assert [e["action"] for e in shards[0].controls] == ["swap"]
        assert not shards[1].controls and not shards[2].controls

    def test_run_sharded_merges_exactly_once(self, admin_gateway):
        from repro.replay import run_sharded

        config = TraceConfig(seed=7, requests=60, rate_qps=600, n_items=6)
        trace = generate_trace(config)
        target = HttpTarget(admin_gateway.url, admin_token=ADMIN_TOKEN)
        report = run_sharded(trace, target, drivers=3, speed=0.0)
        assert report.submitted == 60
        assert report.outcomes == {"answered": 60}
        assert len(report.latency) == 60  # histograms merged by addition
        assert report.reconciled, report.mismatches
        # The parent brackets the whole sharded window with one counter
        # snapshot pair, so the ledger still reconciles pair by pair.
        assert report.counters_delta is not None
        assert report.counters_delta["registry_requests"] == 60

    def test_single_driver_short_circuits(self, admin_gateway):
        from repro.replay import run_sharded

        config = TraceConfig(seed=7, requests=20, rate_qps=400, n_items=6)
        trace = generate_trace(config)
        target = HttpTarget(admin_gateway.url, admin_token=ADMIN_TOKEN)
        report = run_sharded(trace, target, drivers=1, speed=0.0)
        assert report.outcomes == {"answered": 20}
        assert report.reconciled


class TestHistogramState:
    def test_round_trip_preserves_percentiles(self):
        histogram = LatencyHistogram()
        for ms in range(1, 51):
            histogram.record(ms / 1000.0)
        rebuilt = LatencyHistogram.from_state(histogram.to_state())
        assert len(rebuilt) == len(histogram)
        assert rebuilt.max == histogram.max
        for q in (50.0, 90.0, 99.0):
            assert rebuilt.percentile(q) == histogram.percentile(q)

    def test_rejects_wrong_bucket_count(self):
        state = LatencyHistogram().to_state()
        state["counts"] = state["counts"][:-1]
        with pytest.raises(ValueError):
            LatencyHistogram.from_state(state)


class TestGatewayHardening:
    def test_oversized_body_gets_413(self, gateway):
        body = json.dumps(
            {"items": [0], "padding": "x" * (128 * 1024)}
        ).encode()
        request = urllib.request.Request(
            f"{gateway.url}/v1/models/default:predict",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10.0)
        assert excinfo.value.code == 413
        envelope = json.loads(excinfo.value.read().decode())
        assert envelope["error"]["type"] == "RequestTooLarge"

    def test_stalled_body_gets_408(self, classifier):
        registry = ModelRegistry(ServeConfig(), counters=EngineCounters())
        registry.deploy_model("default", classifier)
        server = GatewayServer(registry, read_timeout=0.3)
        with server:
            with socket.create_connection(
                (server.host, server.port), timeout=10.0
            ) as conn:
                conn.sendall(
                    b"POST /v1/models/default:predict HTTP/1.1\r\n"
                    b"Host: test\r\nContent-Type: application/json\r\n"
                    b"Content-Length: 100\r\n\r\n"
                )
                # ... and never send the body.  The handler drops the
                # connection after answering, so read until EOF.
                chunks = []
                while True:
                    chunk = conn.recv(65536)
                    if not chunk:
                        break
                    chunks.append(chunk)
                response = b"".join(chunks).decode("utf-8", "replace")
        registry.close()
        assert " 408 " in response.splitlines()[0]
        assert "RequestTimeout" in response

    def test_gateway_rejects_bad_limits(self, classifier):
        registry = ModelRegistry(ServeConfig(), counters=EngineCounters())
        try:
            with pytest.raises(ValueError):
                GatewayServer(registry, max_body_bytes=0)
            with pytest.raises(ValueError):
                GatewayServer(registry, read_timeout=0.0)
        finally:
            registry.close()


class TestBreakerVisibility:
    def test_health_surfaces_breaker_state_and_retry_after(self, classifier):
        flaky = FlakyBatchModel(
            classifier,
            faults=[ServiceFault(i, "error") for i in range(6)],
        )
        counters = EngineCounters()
        registry = ModelRegistry(
            ServeConfig(
                breaker_threshold=1, breaker_cooldown=30.0, max_batch=1
            ),
            counters=counters,
        )
        try:
            registry.deploy_model("default", flaky)
            with pytest.raises(Exception):
                registry.classification_values(
                    "default", np.zeros(6, dtype=bool)
                )
            health = registry.health()
            assert health.breakers_open == 1
            assert health.breaker_retry_after > 0.0
            slot = health.models["default"]
            assert slot.breaker == "open"
            assert slot.breaker_retry_after > 0.0
            with GatewayServer(registry) as server:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(
                        f"{server.url}/health", timeout=10.0
                    )
                assert excinfo.value.code == 503  # breaker open -> not ready
                payload = json.loads(excinfo.value.read().decode())
            assert payload["breakers_open"] == 1
            assert payload["breaker_retry_after"] > 0.0
            model = payload["models"]["default"]
            assert model["breaker"] == "open"
            assert model["breaker_retry_after"] > 0.0
            assert model["consecutive_failures"] >= 1
        finally:
            registry.close()

    def test_healthy_slot_reports_zero_retry_after(self, classifier):
        registry = ModelRegistry(ServeConfig(), counters=EngineCounters())
        try:
            registry.deploy_model("default", classifier)
            health = registry.health()
            assert health.breakers_open == 0
            assert health.breaker_retry_after == 0.0
        finally:
            registry.close()


# ----------------------------------------------------------------------
# CLI and graceful drain
# ----------------------------------------------------------------------


class TestReplayCli:
    def test_replay_verb_deterministic_accounting(self, capsys, tmp_path):
        from repro.cli import main

        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        assert main(
            ["replay", "--seed", "7", "--requests", "80", "--rate", "800",
             "--trace", str(first)]
        ) == 0
        out_first = capsys.readouterr().out
        assert main(
            ["replay", "--seed", "7", "--requests", "80", "--rate", "800",
             "--trace", str(second)]
        ) == 0
        out_second = capsys.readouterr().out
        assert first.read_bytes() == second.read_bytes()
        assert "reconciled: every submitted request accounted" in out_first

        def accounting(text):
            return [
                line
                for line in text.splitlines()
                if line.startswith(("submitted", "answered", "reconciled"))
            ]

        assert accounting(out_first) == accounting(out_second)
        assert "answered  : 80" in out_first

    def test_replay_verb_chaos_reconciles(self, capsys):
        from repro.cli import main

        code = main(
            ["replay", "--seed", "23", "--requests", "150", "--rate",
             "1500", "--chaos", "full", "--tenants", "2",
             "--tenant-quota", "6"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "reconciled: every submitted request accounted" in out

    def test_replay_verb_replays_saved_trace(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "trace.jsonl"
        assert main(
            ["replay", "--seed", "3", "--requests", "40", "--trace",
             str(path)]
        ) == 0
        capsys.readouterr()
        assert main(["replay", "--load", str(path)]) == 0
        assert "answered  : 40" in capsys.readouterr().out

    def test_drivers_shard_needs_a_url(self, capsys):
        from repro.cli import main

        code = main(
            ["replay", "--seed", "1", "--requests", "10", "--drivers", "2"]
        )
        assert code != 0
        assert "--url" in capsys.readouterr().err

    def test_drivers_must_be_positive(self, capsys):
        from repro.cli import main

        code = main(
            ["replay", "--seed", "1", "--requests", "10", "--drivers", "0"]
        )
        assert code != 0
        assert "--drivers" in capsys.readouterr().err

    def test_python_dash_m_repro_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "replay", "--seed", "7",
             "--requests", "30", "--rate", "600"],
            capture_output=True,
            text=True,
            timeout=120,
            cwd=str(Path(__file__).resolve().parent.parent),
        )
        assert result.returncode == 0, result.stderr
        assert "reconciled" in result.stdout


class TestGracefulDrain:
    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_serve_drains_and_exits_zero(
        self, classifier, tmp_path, signum
    ):
        artifact = classifier.save(tmp_path / "model.npz")
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--artifact",
             str(artifact), "--port", str(port)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            cwd=str(Path(__file__).resolve().parent.parent),
        )
        try:
            deadline = time.monotonic() + 60.0
            url = f"http://127.0.0.1:{port}/health"
            while True:
                try:
                    with urllib.request.urlopen(url, timeout=1.0):
                        break
                except Exception:
                    if time.monotonic() >= deadline:
                        process.kill()
                        pytest.fail("gateway never became healthy")
                    if process.poll() is not None:
                        pytest.fail(
                            f"serve exited early: {process.stderr.read()}"
                        )
                    time.sleep(0.1)
            process.send_signal(signum)
            code = process.wait(timeout=60.0)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30.0)
        assert code == 0
        assert "draining and shutting down" in process.stderr.read()
