"""BSTClassifier tests — Algorithm 6 and the public fit/predict API."""

import numpy as np
import pytest

from repro.core.classifier import BSTClassifier, NotFittedError
from repro.datasets.dataset import RelationalDataset

from conftest import random_relational

Q = frozenset({0, 3, 4})


class TestSection54:
    def test_query_classified_cancer(self, example):
        clf = BSTClassifier().fit(example)
        assert clf.predict(Q) == 0

    def test_classification_values(self, example):
        clf = BSTClassifier().fit(example)
        values = clf.classification_values(Q)
        assert values[0] == pytest.approx(0.75)
        assert values[1] == pytest.approx(0.375)

    def test_reference_engine_agrees(self, example):
        fast = BSTClassifier(engine="fast").fit(example)
        ref = BSTClassifier(engine="reference").fit(example)
        for query in [Q, frozenset({1, 2}), frozenset({5})]:
            assert fast.predict(query) == ref.predict(query)
            np.testing.assert_allclose(
                fast.classification_values(query),
                ref.classification_values(query),
                atol=1e-9,
            )


class TestAPI:
    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            BSTClassifier().predict(Q)

    def test_unknown_engine(self):
        with pytest.raises(ValueError):
            BSTClassifier(engine="gpu")

    def test_empty_dataset_rejected(self):
        empty = RelationalDataset((), ("a",), (), ())
        with pytest.raises(ValueError):
            BSTClassifier().fit(empty)

    def test_predict_batch(self, example):
        clf = BSTClassifier().fit(example)
        batch = clf.predict_batch([Q, Q])
        assert isinstance(batch, np.ndarray)
        assert batch.tolist() == [0, 0]

    def test_deprecated_aliases_removed(self, example):
        # predict_many/predict_dataset finished their deprecation cycle;
        # predict_batch is the one batch surface.
        clf = BSTClassifier().fit(example)
        assert not hasattr(clf, "predict_many")
        assert not hasattr(clf, "predict_dataset")

    def test_predict_batch_on_training_matrix(self, example):
        clf = BSTClassifier().fit(example)
        predictions = clf.predict_batch(example.bool_matrix)
        # Training samples classify to their own class on this clean example.
        assert predictions.tolist() == list(example.labels)

    def test_vector_query(self, example):
        clf = BSTClassifier().fit(example)
        vec = np.zeros(example.n_items, dtype=bool)
        vec[[0, 3, 4]] = True
        assert clf.predict(vec) == 0

    def test_predict_with_confidence(self, example):
        clf = BSTClassifier().fit(example)
        label, confidence = clf.predict_with_confidence(Q)
        assert label == 0
        assert confidence == pytest.approx((0.75 - 0.375) / 0.75)

    def test_bsts_lazy_under_fast_engine(self, example):
        clf = BSTClassifier(engine="fast").fit(example)
        assert clf._bsts is None
        assert len(clf.bsts) == 2


class TestTieBreaking:
    def test_smallest_class_wins_ties(self):
        """Algorithm 6 line 6: min{i | CV(i) = max CV}."""
        # Two classes with mirrored samples: a query expressing items of
        # both classes equally must go to class 0.
        ds = RelationalDataset(
            item_names=("a", "b"),
            class_names=("c0", "c1"),
            samples=(frozenset({0}), frozenset({1})),
            labels=(0, 1),
        )
        clf = BSTClassifier().fit(ds)
        values = clf.classification_values(frozenset({0, 1}))
        assert values[0] == values[1]
        assert clf.predict(frozenset({0, 1})) == 0

    def test_no_overlap_query_goes_to_class_zero(self, example):
        """All class values 0 -> argmax picks class 0 (the paper leaves this
        degenerate case to the tie rule)."""
        clf = BSTClassifier().fit(example)
        assert clf.predict(frozenset()) == 0


class TestMulticlass:
    def test_three_class_classification(self):
        """Section 5.3: BSTC generalizes beyond two classes."""
        rng = np.random.default_rng(0)
        items = 9
        # Three classes, each with a signature item block.
        samples = []
        labels = []
        for class_id in range(3):
            for _ in range(6):
                base = {class_id * 3, class_id * 3 + 1, class_id * 3 + 2}
                noise = {
                    int(i) for i in np.flatnonzero(rng.random(items) < 0.1)
                }
                samples.append(frozenset(base | noise))
                labels.append(class_id)
        ds = RelationalDataset(
            item_names=tuple(f"g{i}" for i in range(items)),
            class_names=("A", "B", "C"),
            samples=tuple(samples),
            labels=tuple(labels),
        )
        clf = BSTClassifier().fit(ds)
        for class_id in range(3):
            query = frozenset(
                {class_id * 3, class_id * 3 + 1, class_id * 3 + 2}
            )
            assert clf.predict(query) == class_id

    def test_engines_agree_multiclass(self):
        rng = np.random.default_rng(17)
        for _ in range(6):
            ds = random_relational(rng, n_classes_range=(3, 4))
            fast = BSTClassifier(engine="fast").fit(ds)
            ref = BSTClassifier(engine="reference").fit(ds)
            for _ in range(4):
                query = frozenset(
                    int(i) for i in np.flatnonzero(rng.random(ds.n_items) < 0.5)
                )
                np.testing.assert_allclose(
                    fast.classification_values(query),
                    ref.classification_values(query),
                    atol=1e-6,
                )
