"""Theorem 2 conversion tests: BAR ↔ CAR."""

import numpy as np
import pytest

from repro.bst.row_bar import gene_row_bar
from repro.bst.table import BST
from repro.rules.car import CAR
from repro.rules.conversion import (
    bar_to_car,
    car_to_bar,
    predicted_car_confidence,
    roundtrip_confidence,
)

from conftest import random_relational


def distinct_rows(ds):
    return len(set(ds.samples)) == ds.n_samples


class TestStripping:
    def test_section_43_example(self, example):
        """The g3-row BAR strips to the CAR g3 => Cancer with support
        {s1, s2} and confidence 2/4 (g3 appears in s1, s2, s4, s5)."""
        bst = BST.build(example, 0)
        g3 = example.item_names.index("g3")
        rule = gene_row_bar(bst, g3)
        car = bar_to_car(rule)
        assert car.support_set(example) == {0, 1}
        assert car.confidence(example) == pytest.approx(0.5)

    def test_stripped_car_keeps_support(self):
        """Theorem 2: removing exclusion clauses preserves the support set."""
        rng = np.random.default_rng(51)
        checked = 0
        while checked < 10:
            ds = random_relational(rng)
            if not distinct_rows(ds):
                continue
            bst = BST.build(ds, 0)
            for gene in sorted(bst.nonblank_genes()):
                rule = gene_row_bar(bst, gene)
                car = bar_to_car(rule)
                assert car.support_set(ds) == rule.support
            checked += 1


class TestPredictedConfidence:
    def test_matches_empirical_confidence(self):
        """Theorem 2's count: confidence = supp / (supp + actively excluded)."""
        rng = np.random.default_rng(53)
        checked = 0
        while checked < 12:
            ds = random_relational(rng)
            if not distinct_rows(ds):
                continue
            bst = BST.build(ds, 0)
            for gene in sorted(bst.nonblank_genes()):
                rule = gene_row_bar(bst, gene)
                empirical = bar_to_car(rule).confidence(ds)
                predicted = predicted_car_confidence(bst, rule)
                assert empirical == pytest.approx(predicted)
            checked += 1


class TestLifting:
    def test_lifted_bar_is_100_percent_confident(self):
        """Theorem 2 (⇒): on duplicate-free data, any CAR lifts to a BAR with
        confidence 1 and identical class support."""
        rng = np.random.default_rng(59)
        checked = 0
        while checked < 10:
            ds = random_relational(rng)
            if not distinct_rows(ds):
                continue
            bst = BST.build(ds, 0)
            items = sorted(bst.nonblank_genes())
            for size in (1, 2):
                for start in range(0, max(0, len(items) - size), 3):
                    antecedent = frozenset(items[start : start + size])
                    car = CAR(antecedent, 0)
                    if not car.support_set(ds):
                        continue
                    lifted = car_to_bar(bst, car)
                    bar = lifted.to_bar(bst)
                    assert bar.support_set(ds) == car.support_set(ds)
                    assert bar.confidence(ds) == 1.0
            checked += 1

    def test_roundtrip_confidences_agree(self, example):
        bst = BST.build(example, 0)
        g3 = example.item_names.index("g3")
        empirical, predicted = roundtrip_confidence(bst, CAR(frozenset({g3}), 0))
        assert empirical == pytest.approx(predicted)

    def test_wrong_class_raises(self, example):
        bst = BST.build(example, 0)
        with pytest.raises(ValueError):
            car_to_bar(bst, CAR(frozenset({0}), 1))

    def test_empty_antecedent_raises(self, example):
        bst = BST.build(example, 0)
        with pytest.raises(ValueError):
            car_to_bar(bst, CAR(frozenset(), 0))

    def test_section1_example_rule(self, example):
        """The introduction's rule g1, g3 => Cancer: support 2, confidence 1."""
        g1 = example.item_names.index("g1")
        g3 = example.item_names.index("g3")
        car = CAR(frozenset({g1, g3}), 0)
        assert car.support(example) == 2
        assert car.confidence(example) == 1.0
        bst = BST.build(example, 0)
        lifted = car_to_bar(bst, car)
        assert lifted.to_bar(bst).confidence(example) == 1.0
