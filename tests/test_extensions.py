"""Tests for the Section 8 / Section 4.2 extension classifiers."""

import numpy as np
import pytest

from repro.bst.table import BST
from repro.core.auto import AutoBSTClassifier
from repro.core.classifier import BSTClassifier
from repro.core.mcbar_classifier import MCBARClassifier, rule_satisfaction
from repro.bst.mining import mine_mcmcbar

from conftest import random_relational


class TestMCBARClassifier:
    def test_running_example(self, example):
        clf = MCBARClassifier(k=2).fit(example)
        # The Section 5.4 query classifies as Cancer under BSTC; the rule
        # scheme should agree on this clean example.
        assert clf.predict(frozenset({0, 3, 4})) == 0

    def test_training_samples_score_one_for_own_class(self, example):
        """A training sample fully satisfies some covering (MC)²BAR of its
        own class (Algorithm 4 guarantees coverage)."""
        clf = MCBARClassifier(k=2).fit(example)
        for i, sample in enumerate(example.samples):
            values = clf.class_values(sample)
            assert values[example.labels[i]] == pytest.approx(1.0)

    def test_rule_satisfaction_bounds(self, example):
        bst = BST.build(example, 0)
        rules = mine_mcmcbar(bst, k=5)
        rng = np.random.default_rng(0)
        for _ in range(10):
            query = frozenset(
                int(i) for i in np.flatnonzero(rng.random(example.n_items) < 0.5)
            )
            for rule in rules:
                assert 0.0 <= rule_satisfaction(bst, rule, query) <= 1.0

    def test_boolean_satisfaction_scores_one(self, example):
        """If a query boolean-satisfies the BAR, the quantized value is 1."""
        bst = BST.build(example, 0)
        for rule in mine_mcmcbar(bst, k=5):
            for s in rule.support:
                assert rule_satisfaction(
                    bst, rule, example.samples[s]
                ) == pytest.approx(1.0)

    def test_default_class_on_empty_query(self, example):
        clf = MCBARClassifier(k=2).fit(example)
        assert clf.predict(frozenset()) == example.majority_class()

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            MCBARClassifier(k=0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MCBARClassifier().predict(frozenset())

    def test_n_rules(self, example):
        clf = MCBARClassifier(k=3).fit(example)
        assert clf.n_rules() > 0


class TestAutoBSTClassifier:
    def test_matches_some_arithmetization(self, example):
        """Auto's prediction always equals the prediction of the procedure
        it reports having chosen."""
        auto = AutoBSTClassifier().fit(example)
        rng = np.random.default_rng(1)
        singles = {
            name: BSTClassifier(arithmetization=name).fit(example)
            for name in ("min", "product", "mean")
        }
        for _ in range(10):
            query = frozenset(
                int(i) for i in np.flatnonzero(rng.random(example.n_items) < 0.5)
            )
            label, chosen, confidence = auto.decide(query)
            assert label == singles[chosen].predict(query)
            assert 0.0 <= confidence <= 1.0

    def test_agrees_with_bstc_on_clear_queries(self, example):
        auto = AutoBSTClassifier().fit(example)
        assert auto.predict(frozenset({0, 3, 4})) == 0

    def test_needs_arithmetizations(self):
        with pytest.raises(ValueError):
            AutoBSTClassifier(())

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            AutoBSTClassifier().decide(frozenset())

    def test_single_procedure_degenerates_to_bstc(self):
        rng = np.random.default_rng(2)
        ds = random_relational(rng)
        auto = AutoBSTClassifier(("min",)).fit(ds)
        bstc = BSTClassifier().fit(ds)
        for _ in range(6):
            query = frozenset(
                int(i) for i in np.flatnonzero(rng.random(ds.n_items) < 0.5)
            )
            assert auto.predict(query) == bstc.predict(query)


class TestExtensionExperiments:
    def test_ablation_culling_runs(self):
        from repro.experiments.base import ExperimentConfig
        from repro.experiments.registry import run_experiment

        result = run_experiment(
            "ablation_culling", ExperimentConfig(n_tests=1)
        )
        assert len(result.rows) == 2

    def test_ablation_classifiers_runs(self):
        from repro.experiments.base import ExperimentConfig
        from repro.experiments.registry import run_experiment

        result = run_experiment(
            "ablation_classifiers", ExperimentConfig(n_tests=1)
        )
        assert result.rows[-1][0] == "Mean"
