"""RCBT classifier tests: lower bounds, committee behavior, DNF protocol."""

from itertools import combinations

import numpy as np
import pytest

from repro.baselines.rcbt import RCBTClassifier, ScoredGroup
from repro.datasets.dataset import RelationalDataset
from repro.evaluation.timing import Budget, BudgetExceeded
from repro.rules.groups import RuleGroup, find_lower_bounds

from conftest import random_relational


def brute_force_lower_bounds(ds, group):
    """All minimal antecedent subsets with the group's exact support rows."""
    items = sorted(group.upper_bound)
    minimal = []
    for r in range(1, len(items) + 1):
        for combo in combinations(items, r):
            if ds.support_of_itemset(combo) == group.support_rows:
                cand = frozenset(combo)
                if not any(b <= cand for b in minimal):
                    minimal.append(cand)
    return set(minimal)


class TestLowerBounds:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(81)
        checked = 0
        while checked < 10:
            ds = random_relational(rng, n_samples_range=(4, 8), n_items_range=(3, 8))
            rows = ds.class_members(0)
            if not rows:
                continue
            group = RuleGroup.from_class_rows(ds, 0, rows[:2])
            if not group.upper_bound:
                continue
            expected = brute_force_lower_bounds(ds, group)
            got = set(find_lower_bounds(ds, group, limit=10**6))
            assert got == expected
            checked += 1

    def test_bounds_are_minimal(self):
        rng = np.random.default_rng(83)
        for _ in range(8):
            ds = random_relational(rng, n_samples_range=(4, 8))
            rows = ds.class_members(0)
            if not rows:
                continue
            group = RuleGroup.from_class_rows(ds, 0, rows)
            bounds = find_lower_bounds(ds, group, limit=50)
            for bound in bounds:
                assert ds.support_of_itemset(bound) == group.support_rows
                for item in bound:
                    smaller = bound - {item}
                    if smaller:
                        assert (
                            ds.support_of_itemset(smaller) != group.support_rows
                        )

    def test_limit_respected(self, example):
        group = RuleGroup.from_class_rows(example, 0, (0, 1))
        bounds = find_lower_bounds(example, group, limit=1)
        assert len(bounds) == 1

    def test_budget_enforced(self, example):
        group = RuleGroup.from_class_rows(example, 0, (0, 1))
        with pytest.raises(BudgetExceeded):
            find_lower_bounds(example, group, limit=100, budget=Budget(1e-9))

    def test_max_level_caps_search(self, example):
        group = RuleGroup.from_class_rows(example, 0, (0, 1))
        shallow = find_lower_bounds(example, group, limit=100, max_level=1)
        assert all(len(b) == 1 for b in shallow)

    def test_empty_upper_bound(self, example):
        group = RuleGroup(0, frozenset({0}), frozenset(), frozenset({0}))
        assert find_lower_bounds(example, group, limit=5) == []


class TestRuleGroup:
    def test_from_class_rows(self, example):
        group = RuleGroup.from_class_rows(example, 0, (0, 1))  # s1, s2
        g1 = example.item_names.index("g1")
        g3 = example.item_names.index("g3")
        assert group.upper_bound == {g1, g3}
        assert group.class_support == {0, 1}
        assert group.confidence == 1.0

    def test_describe(self, example):
        group = RuleGroup.from_class_rows(example, 0, (0, 1))
        text = group.describe(example)
        assert "Cancer" in text and "conf=1.000" in text


class TestClassifier:
    def test_fit_predict_on_running_example(self, example):
        clf = RCBTClassifier(k=3, min_support=0.3, nl=5).fit(example)
        # Training samples should classify correctly on this clean dataset.
        predictions = clf.predict_batch(example.samples)
        assert predictions.tolist() == list(example.labels)

    def test_default_class_when_nothing_matches(self, example):
        clf = RCBTClassifier(k=3, min_support=0.3, nl=5).fit(example)
        # An empty query matches no lower bound anywhere.
        assert clf.predict(frozenset()) == example.majority_class()

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RCBTClassifier().predict(frozenset())

    def test_build_before_mine_raises(self):
        with pytest.raises(RuntimeError):
            RCBTClassifier().build()

    def test_invalid_nl(self):
        with pytest.raises(ValueError):
            RCBTClassifier(nl=0)

    def test_class_scores_normalized(self, example):
        clf = RCBTClassifier(k=3, min_support=0.3, nl=5).fit(example)
        scores = clf.class_scores(example.samples[0])
        for normalized, raw in scores.values():
            assert 0.0 <= normalized <= 1.0
            assert raw >= 0.0

    def test_match_strength_bounds(self, example):
        from repro.rules.groups import RuleGroup

        group = RuleGroup.from_class_rows(example, 0, (0, 1))
        scored = ScoredGroup(group, (frozenset({0}), frozenset({2})))
        assert scored.match_strength(frozenset({0, 2})) == 1.0
        assert scored.match_strength(frozenset({0})) == 0.5
        assert scored.match_strength(frozenset({5})) == 0.0

    def test_committee_standby_consulted(self, example):
        """A query matching no primary group should fall through standby
        layers rather than defaulting immediately when a standby matches."""
        clf = RCBTClassifier(k=3, min_support=0.3, nl=5).fit(example)
        assert len(clf._committee) == 3

    def test_accuracy_reasonable_on_synthetic(self, tiny_profile):
        from repro.datasets.discretize import EntropyDiscretizer
        from repro.datasets.splits import count_split
        from repro.datasets.synthetic import generate_expression_data

        data = generate_expression_data(tiny_profile, seed=3)
        split = count_split(data, tiny_profile.given_training, seed=0)
        train = data.subset(split.train_indices)
        test = data.subset(split.test_indices)
        disc = EntropyDiscretizer().fit(train)
        clf = RCBTClassifier(k=5, min_support=0.6, nl=5).fit(disc.transform(train))
        queries = disc.transform_values(test.values)
        predictions = [clf.predict(q) for q in queries]
        accuracy = np.mean(
            [p == l for p, l in zip(predictions, test.labels)]
        )
        assert accuracy >= 0.6

    def test_max_upper_bound_size(self, example):
        clf = RCBTClassifier(k=3, min_support=0.3, nl=5)
        clf.mine_rules(example)
        assert clf.max_upper_bound_size() >= 2


class TestScoredGroup:
    def test_matches_via_lower_bound(self, example):
        group = RuleGroup.from_class_rows(example, 0, (0, 1))
        scored = ScoredGroup(group, (frozenset({0}),))
        assert scored.matches({0, 5})
        assert not scored.matches({5})

    def test_falls_back_to_upper_bound(self, example):
        group = RuleGroup.from_class_rows(example, 0, (0, 1))
        scored = ScoredGroup(group, ())
        assert scored.matches(group.upper_bound)
        assert not scored.matches(frozenset())

    def test_weight(self, example):
        group = RuleGroup.from_class_rows(example, 0, (0, 1))
        assert ScoredGroup(group, ()).weight == pytest.approx(2.0)
