"""CBA classifier tests."""

import numpy as np
import pytest

from repro.baselines.cba import CBAClassifier
from repro.datasets.dataset import RelationalDataset


def signature_dataset():
    """Class 0 expresses item 0, class 1 expresses item 1, plus noise item 2."""
    samples = []
    labels = []
    rng = np.random.default_rng(0)
    for _ in range(8):
        samples.append(frozenset({0} | ({2} if rng.random() < 0.5 else set())))
        labels.append(0)
        samples.append(frozenset({1} | ({2} if rng.random() < 0.5 else set())))
        labels.append(1)
    return RelationalDataset(
        item_names=("a", "b", "n"),
        class_names=("c0", "c1"),
        samples=tuple(samples),
        labels=tuple(labels),
    )


class TestCBA:
    def test_learns_signature_rules(self):
        ds = signature_dataset()
        clf = CBAClassifier(min_support=0.2, min_confidence=0.6).fit(ds)
        assert clf.predict(frozenset({0})) == 0
        assert clf.predict(frozenset({1})) == 1

    def test_default_class_for_unmatched(self):
        ds = signature_dataset()
        clf = CBAClassifier(min_support=0.2, min_confidence=0.6).fit(ds)
        assert clf.predict(frozenset()) in (0, 1)

    def test_rules_cover_training(self):
        ds = signature_dataset()
        clf = CBAClassifier(min_support=0.2, min_confidence=0.6).fit(ds)
        predictions = clf.predict_batch(ds.samples)
        accuracy = np.mean([p == l for p, l in zip(predictions, ds.labels)])
        assert accuracy == 1.0

    def test_rule_list_prefix_minimizes_training_error(self):
        """M1 truncates at the minimum-error prefix, so training error of the
        final classifier is never worse than default-only classification."""
        ds = signature_dataset()
        clf = CBAClassifier(min_support=0.2, min_confidence=0.5).fit(ds)
        default_only_errors = min(
            sum(1 for l in ds.labels if l != c) for c in range(ds.n_classes)
        )
        predictions = clf.predict_batch(ds.samples)
        errors = sum(1 for p, l in zip(predictions, ds.labels) if p != l)
        assert errors <= default_only_errors

    def test_running_example(self, example):
        clf = CBAClassifier(min_support=0.2, min_confidence=0.6, max_rule_len=2)
        clf.fit(example)
        # g1 appears only in Cancer samples -> the CBA rules should capture it.
        g1 = example.item_names.index("g1")
        assert clf.predict(frozenset({g1})) == 0

    def test_rules_property_returns_copy(self, example):
        clf = CBAClassifier(min_support=0.2, min_confidence=0.5).fit(example)
        rules = clf.rules
        rules.clear()
        assert clf.rules or not rules  # internal list untouched
