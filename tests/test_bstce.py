"""BSTCE reference implementation tests — the Figure 3 worked example and
Algorithm 5 invariants."""

import numpy as np
import pytest

from repro.bst.table import BST, build_all_bsts
from repro.core.bstce import bstce, bstce_detail, cell_value

from conftest import random_relational

Q = frozenset({0, 3, 4})  # g1, g4, g5 — the Section 5.4 query


class TestFigure3:
    def test_cancer_value(self, example):
        assert bstce(BST.build(example, 0), Q) == pytest.approx(0.75)

    def test_healthy_value(self, example):
        assert bstce(BST.build(example, 1), Q) == pytest.approx(3 / 8)

    def test_cancer_column_means(self, example):
        """Figure 3: columns s1, s2, s3 average 0.75, 1 and 0.5."""
        _, columns, _ = bstce_detail(BST.build(example, 0), Q)
        assert columns[0] == pytest.approx(0.75)
        assert columns[1] == pytest.approx(1.0)
        assert columns[2] == pytest.approx(0.5)

    def test_g5_s1_cell_value(self, example):
        """Section 5.4: the (g5, s1) cell scores 1/2 — (s4: g1) fully
        satisfied, (s5: -g4,-g6) half satisfied, min taken."""
        _, _, cells = bstce_detail(BST.build(example, 0), Q)
        g5 = example.item_names.index("g5")
        assert cells[(g5, 0)] == pytest.approx(0.5)

    def test_black_dot_cells_score_one(self, example):
        _, _, cells = bstce_detail(BST.build(example, 0), Q)
        g1 = example.item_names.index("g1")
        assert cells[(g1, 0)] == 1.0
        assert cells[(g1, 1)] == 1.0


class TestAlgorithmProperties:
    def test_values_in_unit_interval(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            ds = random_relational(rng)
            for bst in build_all_bsts(ds):
                for _ in range(4):
                    query = frozenset(
                        int(i)
                        for i in np.flatnonzero(rng.random(ds.n_items) < 0.5)
                    )
                    value = bstce(bst, query)
                    assert 0.0 <= value <= 1.0

    def test_empty_query_scores_zero(self, example):
        assert bstce(BST.build(example, 0), frozenset()) == 0.0

    def test_disjoint_query_scores_zero(self, example):
        """A query expressing nothing any class sample expresses has no
        non-blank column."""
        ds = example
        bst = BST.build(ds, 1)
        # g1 is expressed by no Healthy sample.
        assert bstce(bst, frozenset({ds.item_names.index("g1")})) == 0.0

    def test_training_sample_usually_scores_high_for_own_class(self, example):
        """A training sample satisfies all its own cell rules exactly, so its
        own-class value should dominate (perfect column for itself)."""
        bsts = build_all_bsts(example)
        for i, sample in enumerate(example.samples):
            own = example.labels[i]
            values = [bstce(b, sample) for b in bsts]
            assert values[own] == max(values)

    def test_unknown_arithmetization_raises(self, example):
        with pytest.raises(ValueError):
            bstce(BST.build(example, 0), Q, arithmetization="median")

    def test_product_combiner_at_most_min(self, example):
        """Every V_e is in [0,1], so the product is never above the min."""
        rng = np.random.default_rng(9)
        for _ in range(6):
            ds = random_relational(rng)
            bst = BST.build(ds, 0)
            query = frozenset(
                int(i) for i in np.flatnonzero(rng.random(ds.n_items) < 0.5)
            )
            for col in bst.columns:
                for cell in bst.column_cells(col):
                    if cell.gene in query and not cell.black_dot:
                        from repro.core.arithmetization import (
                            min_combiner,
                            product_combiner,
                        )

                        v_min = cell_value(cell, query, min_combiner)
                        v_prod = cell_value(cell, query, product_combiner)
                        assert v_prod <= v_min + 1e-12

    def test_boolean_satisfaction_implies_value_one_with_min(self):
        """If the query *boolean*-satisfies the cell rule, every list has at
        least one satisfied literal, but the min quantization can still be
        below 1; conversely a min-value of 1 means all lists fully
        satisfied, which implies boolean satisfaction."""
        rng = np.random.default_rng(13)
        for _ in range(8):
            ds = random_relational(rng)
            bst = BST.build(ds, 0)
            query = frozenset(
                int(i) for i in np.flatnonzero(rng.random(ds.n_items) < 0.5)
            )
            for col in bst.columns:
                for cell in bst.column_cells(col):
                    if cell.gene not in query:
                        continue
                    value = cell_value(cell, query)
                    if value == 1.0:
                        assert cell.is_satisfied(query)
