"""CHARM closed-itemset miner tests — brute force and Top-k cross-checks."""

from itertools import combinations

import numpy as np
import pytest

from repro.baselines.charm import charm_closed_itemsets, closed_itemsets_of_class
from repro.baselines.topk import TopkMiner
from repro.evaluation.timing import Budget, BudgetExceeded

from conftest import random_relational


def brute_force_closed(transactions, min_count):
    """All closed itemsets: frequent itemsets with no same-support superset."""
    items = sorted({i for t in transactions for i in t})
    frequent = {}
    for r in range(1, len(items) + 1):
        for combo in combinations(items, r):
            tids = frozenset(
                t for t, row in enumerate(transactions) if set(combo) <= row
            )
            if len(tids) >= min_count:
                frequent[frozenset(combo)] = tids
    closed = {}
    for itemset, tids in frequent.items():
        if not any(
            other > itemset and otids == tids
            for other, otids in frequent.items()
        ):
            closed[itemset] = len(tids)
    return closed


class TestCharm:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(121)
        for _ in range(12):
            n = int(rng.integers(3, 9))
            m = int(rng.integers(2, 8))
            transactions = [
                frozenset(int(j) for j in np.flatnonzero(rng.random(m) < 0.5))
                for _ in range(n)
            ]
            for min_count in (1, 2):
                expected = brute_force_closed(transactions, min_count)
                got = charm_closed_itemsets(transactions, min_count)
                assert got == expected

    def test_support_threshold(self):
        transactions = [frozenset({0, 1})] * 3 + [frozenset({2})]
        got = charm_closed_itemsets(transactions, 2)
        assert got == {frozenset({0, 1}): 3}

    def test_invalid_min_count(self):
        with pytest.raises(ValueError):
            charm_closed_itemsets([frozenset({0})], 0)

    def test_budget(self):
        rng = np.random.default_rng(5)
        transactions = [
            frozenset(int(j) for j in np.flatnonzero(rng.random(20) < 0.6))
            for _ in range(12)
        ]
        with pytest.raises(BudgetExceeded):
            charm_closed_itemsets(transactions, 1, budget=Budget(1e-9))

    def test_max_itemsets_caps(self):
        rng = np.random.default_rng(6)
        transactions = [
            frozenset(int(j) for j in np.flatnonzero(rng.random(10) < 0.6))
            for _ in range(10)
        ]
        capped = charm_closed_itemsets(transactions, 1, max_itemsets=3)
        full = charm_closed_itemsets(transactions, 1)
        # The cap is checked per expansion, so a few extra closures may land,
        # but it must stop well short of the full enumeration.
        assert len(capped) < len(full)


class TestCrossCheckWithTopk:
    def test_charm_agrees_with_row_enumeration(self):
        """The two duals must find the same class-projected closed patterns:
        CHARM's (itemset -> class support count) equals the row enumerator's
        rule groups restricted to the class rows."""
        rng = np.random.default_rng(131)
        checked = 0
        while checked < 8:
            ds = random_relational(rng, n_samples_range=(4, 9))
            class_rows = ds.class_members(0)
            if len(class_rows) < 2:
                continue
            min_support = 0.4
            charm = closed_itemsets_of_class(ds, 0, min_support)
            groups = TopkMiner(ds, 0, k=10**6, min_support=min_support).mine()
            # Row enumeration keys groups by all-rows support; project to the
            # class: closure over class rows == closure over support ∩ class.
            from repro.rules.groups import closure_of_rows

            expected = {}
            for group in groups:
                closure = closure_of_rows(ds, group.class_support)
                if closure:
                    expected[closure] = len(group.class_support)
            assert charm == expected
            checked += 1
