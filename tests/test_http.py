"""HTTP gateway tests: a live stdlib server against a live registry."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.classifier import BSTClassifier
from repro.evaluation.timing import EngineCounters
from repro.serving import GatewayServer, ModelRegistry, ServeConfig

Q_ITEMS = [0, 3, 4]


@pytest.fixture
def gateway(tmp_path, example):
    clf = BSTClassifier().fit(example)
    artifact = clf.save(tmp_path / "model.npz")
    registry = ModelRegistry(
        ServeConfig(max_wait_ms=0.5),
        tenant_quota=4,
        counters=EngineCounters(),
    )
    registry.deploy("exp", artifact)
    registry.deploy_model("mem", clf)
    with GatewayServer(registry) as server:
        yield server
    registry.close()


def _request(url, body=None, headers=None):
    """(status, parsed-json) for a GET, or a POST when body is given."""
    data = json.dumps(body).encode() if body is not None else None
    all_headers = {"Content-Type": "application/json"} if data else {}
    all_headers.update(headers or {})
    request = urllib.request.Request(url, data=data, headers=all_headers)
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestRoutes:
    def test_health_ready(self, gateway):
        status, payload = _request(f"{gateway.url}/health")
        assert status == 200
        assert payload["ready"]
        assert set(payload["models"]) == {"exp", "mem"}
        assert payload["models"]["exp"]["state"] == "serving"

    def test_models_listing(self, gateway):
        status, payload = _request(f"{gateway.url}/v1/models")
        assert status == 200
        names = [m["name"] for m in payload["models"]]
        assert names == ["exp", "mem"]
        status, one = _request(f"{gateway.url}/v1/models/exp")
        assert status == 200
        assert one["version"] == 1
        assert one["supports_explain"] is False

    def test_predict_items(self, gateway, example):
        expected = BSTClassifier().fit(example).predict(frozenset(Q_ITEMS))
        status, payload = _request(
            f"{gateway.url}/v1/models/exp:predict", {"items": Q_ITEMS}
        )
        assert status == 200
        assert payload["prediction"] == expected
        assert payload["class_name"] == example.class_names[expected]
        assert len(payload["values"]) == example.n_classes
        assert payload["model"] == "exp"

    def test_predict_vector(self, gateway, example):
        vector = [0.0] * example.n_items
        for i in Q_ITEMS:
            vector[i] = 1.0
        status, payload = _request(
            f"{gateway.url}/v1/models/exp:predict", {"vector": vector}
        )
        assert status == 200
        _, by_items = _request(
            f"{gateway.url}/v1/models/exp:predict", {"items": Q_ITEMS}
        )
        assert payload["values"] == by_items["values"]

    def test_predict_with_tenant_and_deadline(self, gateway):
        status, payload = _request(
            f"{gateway.url}/v1/models/exp:predict",
            {"items": Q_ITEMS, "tenant": "acme", "deadline_ms": 5000},
        )
        assert status == 200
        assert "prediction" in payload

    def test_explain_in_memory_model(self, gateway, example):
        status, payload = _request(
            f"{gateway.url}/v1/models/mem:explain",
            {"items": Q_ITEMS, "min_satisfaction": 0.5},
        )
        assert status == 200
        assert payload["prediction"] == 0
        assert payload["evidence"]
        first = payload["evidence"][0]
        assert first["gene_name"] in example.item_names
        assert "rule" in first and first["rule"]

    def test_concurrent_requests_coalesce(self, gateway, example):
        import concurrent.futures

        def hit(_):
            return _request(
                f"{gateway.url}/v1/models/exp:predict", {"items": Q_ITEMS}
            )

        with concurrent.futures.ThreadPoolExecutor(8) as pool:
            results = list(pool.map(hit, range(24)))
        assert all(status == 200 for status, _ in results)
        values = {tuple(payload["values"]) for _, payload in results}
        assert len(values) == 1  # identical answers


class TestErrorMapping:
    def test_unknown_model_is_404(self, gateway):
        status, payload = _request(
            f"{gateway.url}/v1/models/nope:predict", {"items": Q_ITEMS}
        )
        assert status == 404
        assert payload["error"]["type"] == "ModelNotFound"

    def test_bad_query_is_400(self, gateway):
        status, payload = _request(
            f"{gateway.url}/v1/models/exp:predict", {"items": "zero"}
        )
        assert status == 400
        assert payload["error"]["type"] == "QueryError"

    def test_both_vector_and_items_is_400(self, gateway):
        status, payload = _request(
            f"{gateway.url}/v1/models/exp:predict",
            {"items": Q_ITEMS, "vector": [0.0]},
        )
        assert status == 400
        assert "exactly one" in payload["error"]["message"]

    def test_wrong_length_vector_is_400(self, gateway, example):
        status, payload = _request(
            f"{gateway.url}/v1/models/exp:predict",
            {"vector": [1.0] * (example.n_items + 5)},
        )
        assert status == 400
        assert payload["error"]["type"] == "QueryError"

    def test_explain_artifact_model_is_501(self, gateway):
        status, payload = _request(
            f"{gateway.url}/v1/models/exp:explain", {"items": Q_ITEMS}
        )
        assert status == 501
        assert payload["error"]["type"] == "NotSupportedError"

    def test_empty_body_is_400(self, gateway):
        status, payload = _request(
            f"{gateway.url}/v1/models/exp:predict", {}
        )
        assert status == 400

    def test_unknown_route_is_404(self, gateway):
        status, payload = _request(f"{gateway.url}/nope")
        assert status == 404
        assert payload["error"]["type"] == "NotFound"

    def test_quota_exceeded_is_429_with_error_body(self, gateway):
        # The fixture quota is 4 concurrent; sequential requests never
        # trip it, so assert the mapping directly through a wedged slot
        # is covered in test_registry — here we just confirm a tenant
        # rides through unharmed.
        status, _ = _request(
            f"{gateway.url}/v1/models/exp:predict",
            {"items": Q_ITEMS, "tenant": "t"},
        )
        assert status == 200


class TestLifecycle:
    def test_ephemeral_port_and_url(self, gateway):
        assert gateway.port > 0
        assert gateway.url.startswith("http://127.0.0.1:")

    def test_close_never_served_does_not_hang(self, example):
        registry = ModelRegistry(counters=EngineCounters())
        server = GatewayServer(registry)
        server.close()  # never started: must return, not hang
        registry.close()

    def test_close_releases_port(self, example):
        registry = ModelRegistry(counters=EngineCounters())
        server = GatewayServer(registry).start()
        port = server.port
        server.close()
        # The port is free again: a new server can bind it.
        rebound = GatewayServer(registry, port=port)
        rebound.close()
        registry.close()

    def test_health_degrades_after_registry_close(self, example):
        registry = ModelRegistry(counters=EngineCounters())
        registry.deploy_model("mem", BSTClassifier().fit(example))
        with GatewayServer(registry) as server:
            status, _ = _request(f"{server.url}/health")
            assert status == 200
            registry.close()
            status, payload = _request(f"{server.url}/health")
            assert status == 503
            assert payload["state"] == "closed"

    def test_swap_visible_through_gateway(self, tmp_path, example):
        artifact = BSTClassifier().fit(example).save(tmp_path / "m.npz")
        registry = ModelRegistry(counters=EngineCounters())
        registry.deploy("exp", artifact)
        with GatewayServer(registry) as server:
            _, before = _request(f"{server.url}/v1/models/exp")
            registry.deploy("exp", artifact)  # hot swap
            _, after = _request(f"{server.url}/v1/models/exp")
            status, payload = _request(
                f"{server.url}/v1/models/exp:predict", {"items": Q_ITEMS}
            )
        registry.close()
        assert before["version"] == 1
        assert after["version"] == 2
        assert status == 200
        assert payload["version"] == 2


ADMIN_TOKEN = "test-admin-token"


@pytest.fixture
def admin_gateway(tmp_path, example):
    """An admin-enabled gateway over one artifact-backed slot, yielding
    (server, artifact path, state-file path)."""
    artifact = BSTClassifier().fit(example).save(tmp_path / "model.npz")
    registry = ModelRegistry(ServeConfig(), counters=EngineCounters())
    registry.deploy("exp", artifact)
    state_file = tmp_path / "state.json"
    server = GatewayServer(
        registry, admin_token=ADMIN_TOKEN, state_file=state_file
    )
    with server:
        yield server, artifact, state_file
    registry.close()


def _bearer(token):
    return {"Authorization": f"Bearer {token}"}


class TestAdminPlane:
    def test_disabled_without_token_is_403(self, gateway):
        # The plain fixture configures no admin token: the whole admin
        # plane answers 403 regardless of what the client presents.
        status, payload = _request(
            f"{gateway.url}/admin/v1/counters",
            headers=_bearer("anything"),
        )
        assert status == 403
        assert payload["error"]["type"] == "AdminDisabled"

    def test_missing_or_wrong_token_is_401(self, admin_gateway):
        server, _, _ = admin_gateway
        status, payload = _request(f"{server.url}/admin/v1/counters")
        assert status == 401
        assert payload["error"]["type"] == "AdminAuthError"
        status, _ = _request(
            f"{server.url}/admin/v1/counters", headers=_bearer("wrong")
        )
        assert status == 401

    def test_both_auth_header_forms_accepted(self, admin_gateway):
        server, _, _ = admin_gateway
        status, payload = _request(
            f"{server.url}/admin/v1/counters",
            headers=_bearer(ADMIN_TOKEN),
        )
        assert status == 200
        # Only touched counters appear; the fixture's deploy is one.
        assert payload["counters"].get("registry_deploys") == 1.0
        status, via_header = _request(
            f"{server.url}/admin/v1/counters",
            headers={"X-Admin-Token": ADMIN_TOKEN},
        )
        assert status == 200
        assert set(via_header["counters"]) == set(payload["counters"])

    def test_counters_reflect_served_traffic(self, admin_gateway):
        server, _, _ = admin_gateway
        _, before = _request(
            f"{server.url}/admin/v1/counters", headers=_bearer(ADMIN_TOKEN)
        )
        status, _ = _request(
            f"{server.url}/v1/models/exp:predict", {"items": Q_ITEMS}
        )
        assert status == 200
        _, after = _request(
            f"{server.url}/admin/v1/counters", headers=_bearer(ADMIN_TOKEN)
        )
        delta = after["counters"]["registry_requests"] - before[
            "counters"
        ].get("registry_requests", 0)
        assert delta == 1

    def test_deploy_bumps_version_and_persists_state(self, admin_gateway):
        from repro.serving import read_state_file

        server, artifact, state_file = admin_gateway
        status, payload = _request(
            f"{server.url}/admin/v1/models/exp:deploy",
            {"artifact": str(artifact)},
            headers=_bearer(ADMIN_TOKEN),
        )
        assert status == 200
        assert payload["deployed"]["version"] == 2
        assert read_state_file(state_file) == {"exp": str(artifact)}
        status, model = _request(f"{server.url}/v1/models/exp")
        assert status == 200
        assert model["version"] == 2

    def test_deploy_requires_artifact_path(self, admin_gateway):
        server, _, _ = admin_gateway
        status, payload = _request(
            f"{server.url}/admin/v1/models/exp:deploy",
            {"artifact": 7},
            headers=_bearer(ADMIN_TOKEN),
        )
        assert status == 400
        assert payload["error"]["type"] == "QueryError"

    def test_corrupt_deploy_refused_old_model_serves(
        self, admin_gateway, tmp_path, example
    ):
        from repro.testing.faults import corrupt_artifact_member

        server, _, _ = admin_gateway
        bad = BSTClassifier().fit(example).save(tmp_path / "bad.npz")
        corrupt_artifact_member(bad, "arena_inside_f.npy")
        status, payload = _request(
            f"{server.url}/admin/v1/models/exp:deploy",
            {"artifact": str(bad)},
            headers=_bearer(ADMIN_TOKEN),
        )
        assert status >= 400
        assert "Artifact" in payload["error"]["type"]
        # The refused swap never touched the serving slot.
        status, model = _request(f"{server.url}/v1/models/exp")
        assert status == 200
        assert model["version"] == 1
        status, _ = _request(
            f"{server.url}/v1/models/exp:predict", {"items": Q_ITEMS}
        )
        assert status == 200

    def test_refresh_retrains_from_relational_json(
        self, admin_gateway, tmp_path, example
    ):
        from repro.datasets.io import save_relational_json

        server, _, _ = admin_gateway
        train = tmp_path / "train.json"
        save_relational_json(example, train)
        status, payload = _request(
            f"{server.url}/admin/v1/models/exp:refresh",
            {"train": str(train)},
            headers=_bearer(ADMIN_TOKEN),
        )
        assert status == 200, payload
        assert payload["deployed"]["version"] == 2

    def test_hot_swap_under_load_is_lossless(self, admin_gateway):
        import concurrent.futures

        server, artifact, _ = admin_gateway

        def hit(_):
            return _request(
                f"{server.url}/v1/models/exp:predict", {"items": Q_ITEMS}
            )

        with concurrent.futures.ThreadPoolExecutor(8) as pool:
            futures = [pool.submit(hit, i) for i in range(48)]
            status, _ = _request(
                f"{server.url}/admin/v1/models/exp:deploy",
                {"artifact": str(artifact)},
                headers=_bearer(ADMIN_TOKEN),
            )
            assert status == 200
            results = [f.result() for f in futures]
        # Parity with the in-process deploy guarantee: no request is
        # dropped or errored by a swap racing the data plane.
        assert all(code == 200 for code, _ in results)
        assert {payload["version"] for _, payload in results} <= {1, 2}
