"""Decision tree, bagging and AdaBoost tests."""

import numpy as np
import pytest

from repro.baselines.tree import AdaBoostClassifier, BaggingClassifier, DecisionTree


def and_data(rng, n=40, noise=0.15):
    """y = (x0 > 0) AND (x1 > 0): learnable greedily at depth 2 (XOR is not —
    its first-level information gain is zero for any greedy splitter)."""
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) & (X[:, 1] > 0)).astype(int)
    X = X + rng.normal(0, noise, size=X.shape)
    return X, y


def threshold_data(rng, n=40):
    X = rng.uniform(0, 1, size=(n, 3))
    y = (X[:, 1] > 0.5).astype(int)
    return X, y


class TestDecisionTree:
    def test_learns_single_threshold(self):
        rng = np.random.default_rng(0)
        X, y = threshold_data(rng)
        tree = DecisionTree().fit(X, y)
        assert (tree.predict(X) == y).all()
        assert tree.depth() == 1

    def test_learns_and_with_depth(self):
        rng = np.random.default_rng(1)
        X, y = and_data(rng, n=80, noise=0.0)
        tree = DecisionTree(max_depth=3).fit(X, y)
        assert (tree.predict(X) == y).mean() >= 0.95

    def test_max_depth_respected(self):
        rng = np.random.default_rng(2)
        X, y = and_data(rng, n=60)
        tree = DecisionTree(max_depth=2).fit(X, y)
        assert tree.depth() <= 2

    def test_gain_ratio_criterion(self):
        rng = np.random.default_rng(3)
        X, y = threshold_data(rng)
        tree = DecisionTree(criterion="gain_ratio").fit(X, y)
        assert (tree.predict(X) == y).mean() >= 0.95

    def test_unknown_criterion(self):
        with pytest.raises(ValueError):
            DecisionTree(criterion="chi2")

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTree().predict(np.zeros((1, 2)))

    def test_pure_node_is_leaf(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1, 1, 1])
        tree = DecisionTree().fit(X, y)
        assert tree.depth() == 0

    def test_sample_weights_shift_prediction(self):
        X = np.array([[0.0], [0.1], [1.0], [1.1]])
        y = np.array([0, 0, 1, 1])
        heavy_one = DecisionTree(max_depth=0)
        heavy_one.fit(X, y, sample_weight=np.array([0.1, 0.1, 5.0, 5.0]))
        assert heavy_one.predict(np.array([[0.5]]))[0] == 1

    def test_feature_subsampling(self):
        rng = np.random.default_rng(4)
        X, y = threshold_data(rng, n=60)
        tree = DecisionTree(max_features=1, rng=np.random.default_rng(0))
        tree.fit(X, y)
        assert (tree.predict(X) == y).mean() >= 0.5  # still functional


class TestBagging:
    def test_improves_on_noisy_and(self):
        rng = np.random.default_rng(5)
        X, y = and_data(rng, n=100, noise=0.05)
        bag = BaggingClassifier(n_estimators=15, seed=0).fit(X, y)
        assert (bag.predict(X) == y).mean() >= 0.9

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            BaggingClassifier().predict(np.zeros((1, 2)))


class TestAdaBoost:
    def test_boosted_stumps_beat_single_stump(self):
        rng = np.random.default_rng(6)
        X, y = and_data(rng, n=100, noise=0.0)
        stump = DecisionTree(max_depth=1).fit(X, y)
        boosted = AdaBoostClassifier(n_estimators=25, max_depth=1, seed=0).fit(X, y)
        assert (boosted.predict(X) == y).mean() > (stump.predict(X) == y).mean()

    def test_multiclass(self):
        rng = np.random.default_rng(7)
        X = rng.uniform(0, 3, size=(90, 1))
        y = np.clip(X[:, 0].astype(int), 0, 2)
        boosted = AdaBoostClassifier(n_estimators=20, max_depth=2, seed=0).fit(X, y)
        assert (boosted.predict(X) == y).mean() >= 0.9

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            AdaBoostClassifier().predict(np.zeros((1, 2)))
