"""Exclusion-list culling tests (Section 8 extension)."""

import numpy as np
import pytest

from repro.bst.culling import cull_bst, cull_cell_lists, culling_ratio
from repro.bst.table import BST, ExclusionList

from conftest import random_relational


class TestCullCellLists:
    def test_superset_negated_list_dropped(self):
        a = ExclusionList(3, (1,), negated=True)
        b = ExclusionList(4, (1, 2), negated=True)  # implied by a
        assert cull_cell_lists((a, b)) == (a,)

    def test_different_polarity_kept(self):
        a = ExclusionList(3, (1,), negated=True)
        b = ExclusionList(4, (1, 2), negated=False)
        assert cull_cell_lists((a, b)) == (a, b)

    def test_exact_duplicate_first_kept(self):
        a = ExclusionList(3, (1, 2), negated=True)
        b = ExclusionList(4, (1, 2), negated=True)
        assert cull_cell_lists((a, b)) == (a,)

    def test_incomparable_sets_kept(self):
        a = ExclusionList(3, (1, 2), negated=True)
        b = ExclusionList(4, (2, 3), negated=True)
        assert cull_cell_lists((a, b)) == (a, b)


class TestCullBst:
    def test_boolean_semantics_preserved(self):
        """Every cell rule must evaluate identically before and after the
        cull, for every possible query over the item space."""
        rng = np.random.default_rng(101)
        for _ in range(10):
            ds = random_relational(rng, n_items_range=(3, 7))
            bst = BST.build(ds, 0)
            culled = cull_bst(bst)
            queries = [
                frozenset(int(i) for i in np.flatnonzero(rng.random(ds.n_items) < p))
                for p in (0.2, 0.5, 0.8)
                for _ in range(4)
            ]
            for col in bst.columns:
                for cell in bst.column_cells(col):
                    twin = culled.cell(cell.gene, col)
                    for query in queries:
                        assert cell.is_satisfied(query) == twin.is_satisfied(
                            query
                        )

    def test_never_grows(self):
        rng = np.random.default_rng(103)
        for _ in range(8):
            ds = random_relational(rng)
            bst = BST.build(ds, 0)
            culled = cull_bst(bst)
            assert culled.space_cost() <= bst.space_cost()
            assert 0.0 <= culling_ratio(bst, culled) <= 1.0

    def test_black_dots_untouched(self, example):
        bst = BST.build(example, 0)
        culled = cull_bst(bst)
        g1 = example.item_names.index("g1")
        assert culled.cell(g1, 0).black_dot

    def test_structure_preserved(self, example):
        bst = BST.build(example, 0)
        culled = cull_bst(bst)
        assert culled.columns == bst.columns
        assert culled.n_cells() == bst.n_cells()
