"""Synthetic microarray generator tests."""

import numpy as np
import pytest

from repro.datasets.discretize import EntropyDiscretizer
from repro.datasets.profiles import MULTICLASS_PROFILE, scaled
from repro.datasets.synthetic import generate_expression_data, informative_gene_mask


class TestGeneration:
    def test_shapes_match_profile(self, tiny_profile):
        data = generate_expression_data(tiny_profile, seed=0)
        assert data.n_genes == tiny_profile.n_genes
        assert data.n_samples == tiny_profile.n_samples
        assert data.class_sizes() == tiny_profile.class_counts

    def test_deterministic(self, tiny_profile):
        a = generate_expression_data(tiny_profile, seed=7)
        b = generate_expression_data(tiny_profile, seed=7)
        np.testing.assert_array_equal(a.values, b.values)

    def test_seed_changes_data(self, tiny_profile):
        a = generate_expression_data(tiny_profile, seed=1)
        b = generate_expression_data(tiny_profile, seed=2)
        assert not np.allclose(a.values, b.values)

    def test_labels_grouped_by_class(self, tiny_profile):
        data = generate_expression_data(tiny_profile, seed=0)
        labels = list(data.labels)
        assert labels == sorted(labels)

    def test_multiclass_profile(self):
        data = generate_expression_data(MULTICLASS_PROFILE, seed=0)
        assert data.n_classes == 3
        assert data.class_sizes() == MULTICLASS_PROFILE.class_counts

    def test_informative_mask_matches_generator(self, tiny_profile):
        mask = informative_gene_mask(tiny_profile, seed=3)
        expected = max(
            tiny_profile.block_size,
            int(tiny_profile.n_genes * tiny_profile.informative_fraction),
        )
        assert mask.sum() == expected


class TestSignal:
    def test_informative_genes_separate_classes(self, tiny_profile):
        """The planted genes should show a class mean gap; noise genes not."""
        data = generate_expression_data(tiny_profile, seed=5)
        mask = informative_gene_mask(tiny_profile, seed=5)
        labels = data.label_array
        gap = np.abs(
            data.values[labels == 0].mean(axis=0)
            - data.values[labels == 1].mean(axis=0)
        )
        assert gap[mask].mean() > 2 * gap[~mask].mean()

    def test_discretizer_prefers_informative_genes(self, tiny_profile):
        data = generate_expression_data(tiny_profile, seed=8)
        mask = informative_gene_mask(tiny_profile, seed=8)
        disc = EntropyDiscretizer().fit(data)
        kept = disc.kept_gene_indices()
        assert kept, "discretizer kept nothing"
        informative_kept = sum(1 for j in kept if mask[j])
        assert informative_kept / len(kept) > 0.7

    def test_duplicates_create_correlated_columns(self):
        profile = scaled("ALL")
        data = generate_expression_data(profile, seed=2)
        corr = np.corrcoef(data.values.T)
        np.fill_diagonal(corr, 0.0)
        # Duplicate probes should produce at least one near-perfect pair.
        assert np.nanmax(np.abs(corr)) > 0.95
