"""Property tests for the MDLP discretizer.

The key semantic invariant: MDLP operates on *order statistics* (entropy of
threshold splits), so the induced partition of the samples must be invariant
under any strictly increasing transform of a gene's values — even though the
numeric cut points move.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.discretize import mdlp_cut_points


@st.composite
def labeled_values(draw):
    n = draw(st.integers(min_value=4, max_value=30))
    values = draw(
        st.lists(
            st.floats(
                min_value=-100, max_value=100, allow_nan=False, width=32
            ),
            min_size=n,
            max_size=n,
        )
    )
    labels = draw(
        st.lists(st.integers(min_value=0, max_value=1), min_size=n, max_size=n)
    )
    return values, labels


def partition_of(values, cuts):
    return tuple(int(np.searchsorted(cuts, v, side="left")) for v in values)


class TestMdlpProperties:
    @given(labeled_values())
    @settings(max_examples=150, deadline=None)
    def test_cuts_strictly_inside_range(self, case):
        values, labels = case
        cuts = mdlp_cut_points(values, labels, 2)
        if cuts:
            assert min(values) < cuts[0]
            assert cuts[-1] < max(values)

    @given(labeled_values())
    @settings(max_examples=150, deadline=None)
    def test_cuts_sorted_and_distinct(self, case):
        values, labels = case
        cuts = mdlp_cut_points(values, labels, 2)
        assert cuts == sorted(cuts)
        assert len(cuts) == len(set(cuts))

    @given(labeled_values())
    @settings(max_examples=100, deadline=None)
    def test_partition_invariant_under_monotone_transform(self, case):
        values, labels = case
        base_cuts = mdlp_cut_points(values, labels, 2)
        transformed = [float(np.arctan(v / 50.0) * 10 + v * 0.001) for v in values]
        trans_cuts = mdlp_cut_points(transformed, labels, 2)
        assert partition_of(values, base_cuts) == partition_of(
            transformed, trans_cuts
        )

    @given(labeled_values())
    @settings(max_examples=100, deadline=None)
    def test_pure_labels_never_cut(self, case):
        values, _ = case
        assert mdlp_cut_points(values, [0] * len(values), 2) == []

    @given(labeled_values())
    @settings(max_examples=100, deadline=None)
    def test_deterministic(self, case):
        values, labels = case
        assert mdlp_cut_points(values, labels, 2) == mdlp_cut_points(
            values, labels, 2
        )
