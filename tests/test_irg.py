"""IRG classifier tests."""

import numpy as np
import pytest

from repro.baselines.irg import IRGClassifier
from repro.datasets.dataset import RelationalDataset


class TestIRG:
    def test_running_example(self, example):
        clf = IRGClassifier(min_support=0.3, min_confidence=0.9).fit(example)
        assert clf.n_groups() > 0
        # Training samples contain their own class's closed patterns.
        predictions = clf.predict_batch(list(example.samples))
        accuracy = np.mean(
            [p == l for p, l in zip(predictions, example.labels)]
        )
        assert accuracy >= 0.8

    def test_default_class_for_no_match(self, example):
        clf = IRGClassifier(min_support=0.3, min_confidence=0.9).fit(example)
        assert clf.predict(frozenset()) == example.majority_class()

    def test_confidence_cutoff_filters(self, example):
        strict = IRGClassifier(min_support=0.3, min_confidence=1.0).fit(example)
        loose = IRGClassifier(min_support=0.3, min_confidence=0.5).fit(example)
        assert strict.n_groups() <= loose.n_groups()
        for groups in strict._groups.values():
            for group in groups:
                assert group.confidence == 1.0

    def test_scores_in_unit_interval(self, example):
        clf = IRGClassifier(min_support=0.3, min_confidence=0.7).fit(example)
        for sample in example.samples:
            for score in clf.class_scores(sample).values():
                assert 0.0 <= score <= 1.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            IRGClassifier(min_support=0.0)
        with pytest.raises(ValueError):
            IRGClassifier(min_confidence=1.5)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            IRGClassifier().predict(frozenset())

    def test_on_synthetic_pipeline(self, tiny_profile):
        from repro.datasets.discretize import EntropyDiscretizer
        from repro.datasets.splits import count_split
        from repro.datasets.synthetic import generate_expression_data

        data = generate_expression_data(tiny_profile, seed=4)
        split = count_split(data, tiny_profile.given_training, seed=0)
        train = data.subset(split.train_indices)
        test = data.subset(split.test_indices)
        disc = EntropyDiscretizer().fit(train)
        clf = IRGClassifier(min_support=0.6, min_confidence=0.8)
        clf.fit(disc.transform(train))
        queries = disc.transform_values(test.values)
        predictions = clf.predict_batch(queries)
        accuracy = np.mean([p == l for p, l in zip(predictions, test.labels)])
        # Upper-bound matching generalizes poorly (the Section 6.1 story) but
        # must beat random guessing on planted data.
        assert accuracy >= 0.5
