"""Micro-batching prediction service and evaluator-cache concurrency."""

import threading
import time

import numpy as np
import pytest

from conftest import random_relational
from repro.core.fast import (
    FastBSTCEvaluator,
    clear_evaluator_cache,
    evaluator_cache_info,
    get_evaluator,
    set_evaluator_cache_size,
)
from repro.errors import WorkerCrashed
from repro.evaluation.timing import EngineCounters
from repro.serving import (
    CircuitOpen,
    DeadlineExceeded,
    PredictionService,
    QueryError,
    ServeConfig,
    ServiceClosed,
    ServiceOverloaded,
)
from repro.testing import FlakyBatchModel, PoisonQueryError, ServiceFault


def make_service(model, *args, counters=None, **cfg):
    """A service from new-style config kwargs (the post-redesign surface)."""
    if args:  # a ServeConfig passed positionally
        (config,) = args
        return PredictionService(model, config, counters=counters)
    return PredictionService(model, ServeConfig(**cfg), counters=counters)


def _poll(predicate, timeout=5.0, interval=0.002):
    """Spin until ``predicate()`` is true (tests only; bounded)."""
    limit = time.monotonic() + timeout
    while time.monotonic() < limit:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class _GatedModel:
    """Delegates to an inner model, blocking selected calls on an event so
    tests can wedge the worker at a known point."""

    def __init__(self, inner, gates):
        self.inner = inner
        self._gates = dict(gates)  # call index -> threading.Event
        self._lock = threading.Lock()
        self.calls = 0
        self.started = threading.Event()

    @property
    def dataset(self):
        return self.inner.dataset

    def classification_values_batch(self, queries):
        with self._lock:
            index = self.calls
            self.calls += 1
        self.started.set()
        gate = self._gates.get(index)
        if gate is not None:
            gate.wait()
        return self.inner.classification_values_batch(queries)


@pytest.fixture
def evaluator(example):
    return FastBSTCEvaluator(example)


def _queries(rng, n_items, n=24):
    return [rng.random(n_items) < 0.4 for _ in range(n)]


class TestCorrectness:
    def test_values_match_direct_evaluation(self, evaluator):
        rng = np.random.default_rng(3)
        queries = _queries(rng, evaluator.dataset.n_items)
        with make_service(evaluator, counters=EngineCounters()) as service:
            served = [service.classification_values(q) for q in queries]
        direct = evaluator.classification_values_batch(queries)
        assert np.array_equal(np.asarray(served), direct)

    def test_predict_matches_argmax(self, evaluator):
        query = np.zeros(evaluator.dataset.n_items, dtype=bool)
        query[[0, 3, 4]] = True
        with make_service(evaluator, counters=EngineCounters()) as service:
            label = service.predict(query)
        assert label == int(np.argmax(evaluator.classification_values(query)))

    def test_concurrent_callers_get_their_own_rows(self, evaluator):
        rng = np.random.default_rng(5)
        queries = _queries(rng, evaluator.dataset.n_items, n=64)
        expected = evaluator.classification_values_batch(queries)
        results = [None] * len(queries)

        def call(i):
            results[i] = service.classification_values(queries[i])

        with make_service(
            evaluator, max_batch=8, max_wait_ms=5.0, counters=EngineCounters()
        ) as service:
            threads = [
                threading.Thread(target=call, args=(i,))
                for i in range(len(queries))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert np.array_equal(np.asarray(results), expected)


class TestBatching:
    def test_concurrent_load_coalesces(self, evaluator):
        counters = EngineCounters()
        rng = np.random.default_rng(9)
        queries = _queries(rng, evaluator.dataset.n_items, n=32)
        barrier = threading.Barrier(len(queries))

        def call(q):
            barrier.wait()
            service.classification_values(q)

        with make_service(
            evaluator, max_batch=8, max_wait_ms=20.0, counters=counters
        ) as service:
            threads = [
                threading.Thread(target=call, args=(q,)) for q in queries
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        snap = counters.snapshot()
        assert snap["service_requests"] == len(queries)
        assert snap["service_batched_queries"] == len(queries)
        # 32 simultaneous callers over batches of <= 8 must coalesce at
        # least once; all-singleton batching would mean 32 batches.
        assert snap["max_service_batch"] > 1
        assert snap["service_batches"] < len(queries)
        assert snap["service_compute_seconds"] > 0
        assert snap["service_latency_seconds"] > 0

    def test_lone_request_is_answered(self, evaluator):
        counters = EngineCounters()
        with make_service(
            evaluator, max_wait_ms=0.0, counters=counters
        ) as service:
            query = np.zeros(evaluator.dataset.n_items, dtype=bool)
            service.classification_values(query)
        assert counters.get("service_batches") == 1
        assert counters.get("max_service_batch") == 1


class TestLifecycle:
    def test_submit_after_close_raises(self, evaluator):
        counters = EngineCounters()
        service = make_service(evaluator, counters=counters)
        service.close()
        assert service.closed
        with pytest.raises(ServiceClosed):
            service.classification_values(
                np.zeros(evaluator.dataset.n_items, dtype=bool)
            )
        assert counters.get("service_rejected") == 1
        service.close()  # idempotent

    def test_timeout(self, example):
        class Stuck:
            dataset = example

            def classification_values_batch(self, queries):
                event.wait()
                return np.zeros((len(queries), example.n_classes))

        event = threading.Event()
        service = make_service(Stuck(), counters=EngineCounters())
        try:
            with pytest.raises(TimeoutError):
                service.classification_values(
                    np.zeros(example.n_items, dtype=bool), timeout=0.05
                )
        finally:
            event.set()
            service.close()

    def test_batch_error_propagates_to_every_caller(self, example):
        class Broken:
            dataset = example

            def classification_values_batch(self, queries):
                raise RuntimeError("kernel exploded")

        counters = EngineCounters()
        errors = []

        def call(service):
            try:
                service.classification_values(
                    np.zeros(example.n_items, dtype=bool)
                )
            except RuntimeError as exc:
                errors.append(exc)

        with make_service(
            Broken(), max_wait_ms=10.0, counters=counters, breaker_threshold=None
        ) as service:
            threads = [
                threading.Thread(target=call, args=(service,))
                for _ in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(errors) == 6
        assert all("kernel exploded" in str(e) for e in errors)
        assert counters.get("service_batch_errors") >= 1
        assert service.answered == 6

    def test_backpressure_queue_stays_bounded(self, evaluator):
        # With max_pending=2 the queue can never hold more than 2 requests;
        # submitters block instead.  The run must still answer everything.
        rng = np.random.default_rng(13)
        queries = _queries(rng, evaluator.dataset.n_items, n=20)
        with make_service(
            evaluator,
            max_batch=4,
            max_wait_ms=1.0,
            max_pending=2,
            counters=EngineCounters(),
        ) as service:
            results = [None] * len(queries)

            def call(i):
                results[i] = service.classification_values(queries[i])
                assert service.pending() <= 2

            threads = [
                threading.Thread(target=call, args=(i,))
                for i in range(len(queries))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert all(r is not None for r in results)
        assert service.answered == len(queries)

    def test_invalid_parameters(self, evaluator):
        with pytest.raises(ValueError):
            make_service(evaluator, max_batch=0)
        with pytest.raises(ValueError):
            make_service(evaluator, max_wait_ms=-1.0)
        with pytest.raises(ValueError):
            make_service(evaluator, max_pending=0)


class TestShutdownStress:
    def test_every_request_answered_exactly_once_under_shutdown(
        self, evaluator
    ):
        # Hammer the service from many threads while the main thread closes
        # it mid-flight.  Every submission must end in exactly one outcome:
        # an answer (counted by the service) or a ServiceClosed rejection.
        # No request may hang or be answered twice.
        for round_seed in range(5):
            rng = np.random.default_rng(round_seed)
            counters = EngineCounters()
            service = make_service(
                evaluator,
                max_batch=4,
                max_wait_ms=0.5,
                max_pending=8,
                counters=counters,
            )
            n_threads, per_thread = 8, 16
            answered = [0] * n_threads
            rejected = [0] * n_threads
            start = threading.Barrier(n_threads + 1)

            def call(slot):
                q = rng.random(evaluator.dataset.n_items) < 0.4
                start.wait()
                for _ in range(per_thread):
                    try:
                        values = service.classification_values(q, timeout=30)
                        assert values.shape == (evaluator.dataset.n_classes,)
                        answered[slot] += 1
                    except ServiceClosed:
                        rejected[slot] += 1

            threads = [
                threading.Thread(target=call, args=(i,))
                for i in range(n_threads)
            ]
            for t in threads:
                t.start()
            start.wait()
            service.close()  # race the close against in-flight submissions
            for t in threads:
                t.join()
            submitted = n_threads * per_thread
            assert sum(answered) + sum(rejected) == submitted
            assert service.answered == sum(answered)
            snap = counters.snapshot()
            assert snap.get("service_requests", 0) == sum(answered)
            assert snap.get("service_rejected", 0) == sum(rejected)


class TestQueryValidation:
    def test_wrong_gene_count(self, evaluator):
        counters = EngineCounters()
        with make_service(evaluator, counters=counters) as service:
            with pytest.raises(QueryError, match="genes"):
                service.classification_values(
                    np.zeros(evaluator.dataset.n_items + 3, dtype=bool)
                )
        assert counters.get("service_query_rejects") == 1

    def test_nan_names_offending_gene(self, evaluator):
        query = np.zeros(evaluator.dataset.n_items, dtype=float)
        query[2] = np.nan
        with make_service(evaluator, counters=EngineCounters()) as service:
            with pytest.raises(QueryError, match="gene 2"):
                service.classification_values(query)

    def test_inf_rejected(self, evaluator):
        query = np.zeros(evaluator.dataset.n_items, dtype=float)
        query[-1] = np.inf
        with make_service(evaluator, counters=EngineCounters()) as service:
            with pytest.raises(QueryError, match="finite"):
                service.classification_values(query)

    def test_non_numeric_dtype(self, evaluator):
        query = np.array(["a"] * evaluator.dataset.n_items)
        with make_service(evaluator, counters=EngineCounters()) as service:
            with pytest.raises(QueryError, match="dtype"):
                service.classification_values(query)

    def test_two_dimensional_rejected(self, evaluator):
        query = np.zeros((2, evaluator.dataset.n_items), dtype=bool)
        with make_service(evaluator, counters=EngineCounters()) as service:
            with pytest.raises(QueryError, match="1-D"):
                service.classification_values(query)

    def test_item_index_out_of_range(self, evaluator):
        with make_service(evaluator, counters=EngineCounters()) as service:
            with pytest.raises(QueryError, match="outside"):
                service.classification_values({0, evaluator.dataset.n_items})

    def test_item_index_set_accepted(self, evaluator):
        with make_service(evaluator, counters=EngineCounters()) as service:
            values = service.classification_values({0, 3, 4})
        assert np.array_equal(
            values, evaluator.classification_values({0, 3, 4})
        )

    def test_validation_can_be_disabled(self, evaluator):
        # With validation off, a wrong-width query reaches the kernel and
        # fails there instead (as a per-query evaluation error).
        query = np.zeros(evaluator.dataset.n_items + 3, dtype=bool)
        with make_service(
            evaluator,
            counters=EngineCounters(),
            validate_queries=False,
            breaker_threshold=None,
        ) as service:
            with pytest.raises(Exception) as info:
                service.classification_values(query)
        assert not isinstance(info.value, QueryError)


class TestDeadlines:
    def test_zero_deadline_rejected_at_submission(self, evaluator):
        counters = EngineCounters()
        with make_service(evaluator, counters=counters) as service:
            with pytest.raises(DeadlineExceeded):
                service.classification_values(
                    np.zeros(evaluator.dataset.n_items, dtype=bool),
                    deadline_ms=0,
                )
        assert counters.get("service_deadline_exceeded") == 1
        assert counters.get("service_requests") == 0  # never enqueued

    def test_expired_request_never_occupies_a_batch_slot(self, evaluator):
        # Wedge the worker inside batch 0, let a deadlined request expire in
        # the queue, then release: the worker must answer it with
        # DeadlineExceeded without ever handing it to the model.
        gate = threading.Event()
        model = _GatedModel(evaluator, {0: gate})
        counters = EngineCounters()
        zeros = np.zeros(evaluator.dataset.n_items, dtype=bool)
        outcome = {}
        with make_service(
            model, max_batch=1, max_wait_ms=0.0, counters=counters
        ) as service:
            wedge = threading.Thread(
                target=service.classification_values, args=(zeros,)
            )
            wedge.start()
            assert model.started.wait(5.0)

            def call():
                try:
                    outcome["value"] = service.classification_values(
                        zeros, deadline_ms=20.0
                    )
                except Exception as exc:
                    outcome["error"] = exc

            deadlined = threading.Thread(target=call)
            deadlined.start()
            time.sleep(0.08)  # let the queued deadline expire
            gate.set()
            wedge.join()
            deadlined.join()
        assert isinstance(outcome.get("error"), DeadlineExceeded)
        assert model.calls == 1  # the expired request never reached the model
        assert counters.get("service_deadline_exceeded") == 1

    def test_default_deadline_applies(self, evaluator):
        gate = threading.Event()
        model = _GatedModel(evaluator, {0: gate})
        zeros = np.zeros(evaluator.dataset.n_items, dtype=bool)
        errors = []
        with make_service(
            model,
            max_batch=1,
            max_wait_ms=0.0,
            default_deadline_ms=20.0,
            counters=EngineCounters(),
        ) as service:
            threads = [
                threading.Thread(
                    target=lambda: errors.append(
                        _call_capture(service, zeros)
                    )
                )
                for _ in range(2)
            ]
            threads[0].start()
            assert model.started.wait(5.0)
            threads[1].start()
            time.sleep(0.08)
            gate.set()
            for t in threads:
                t.join()
        # The wedged request was evaluated in time or not — but the queued
        # one must have hit the service-wide default deadline.
        assert any(isinstance(e, DeadlineExceeded) for e in errors)


def _call_capture(service, query):
    try:
        return service.classification_values(query)
    except Exception as exc:
        return exc


class TestAdmissionControl:
    def test_shedding_trips_and_readmits(self, evaluator):
        gate = threading.Event()
        model = _GatedModel(evaluator, {0: gate})
        counters = EngineCounters()
        zeros = np.zeros(evaluator.dataset.n_items, dtype=bool)
        service = make_service(
            model,
            max_batch=1,
            max_wait_ms=0.0,
            shed_high=2,
            shed_low=0,
            counters=counters,
        )
        try:
            threads = [
                threading.Thread(
                    target=service.classification_values, args=(zeros,)
                )
            ]
            threads[0].start()
            assert model.started.wait(5.0)  # worker wedged in batch 0
            for _ in range(2):  # fill the queue to the high-water mark
                t = threading.Thread(
                    target=service.classification_values, args=(zeros,)
                )
                t.start()
                threads.append(t)
            assert _poll(lambda: service.pending() >= 2)
            with pytest.raises(ServiceOverloaded):
                service.classification_values(zeros)
            assert counters.get("service_shed_trips") == 1
            assert counters.get("service_shed") == 1
            assert service.health().shedding
            gate.set()
            for t in threads:
                t.join()
            assert _poll(lambda: service.pending() == 0)
            # Hysteresis: once drained to the low-water mark, re-admitted.
            values = service.classification_values(zeros)
            assert values.shape == (evaluator.dataset.n_classes,)
            assert not service.health().shedding
        finally:
            gate.set()
            service.close()

    def test_shed_parameters_validated(self, evaluator):
        with pytest.raises(ValueError):
            make_service(evaluator, shed_low=1)
        with pytest.raises(ValueError):
            make_service(evaluator, shed_high=0)
        with pytest.raises(ValueError):
            make_service(evaluator, shed_high=2, shed_low=2)


class TestHealth:
    def test_ready_service_snapshot(self, evaluator):
        with make_service(evaluator, counters=EngineCounters()) as service:
            health = service.health()
            assert health.ready
            assert health.state == "serving"
            assert health.breaker == "closed"
            assert health.worker_alive
            assert health.worker_restarts == 0
            assert health.queue_depth == 0
            assert not health.shedding
        health = service.health()
        assert health.state == "closed"
        assert not health.ready


@pytest.mark.faults
class TestPoisonIsolation:
    def test_poison_query_fails_alone_batchmates_bit_identical(
        self, evaluator
    ):
        n_items = evaluator.dataset.n_items
        clean = [np.eye(n_items, dtype=bool)[i % n_items] for i in range(7)]
        poison = np.ones(n_items, dtype=bool)
        expected = evaluator.classification_values_batch(clean)
        flaky = FlakyBatchModel(
            evaluator, poison=lambda row: bool(np.asarray(row).all())
        )
        gate = threading.Event()
        model = _GatedModel(flaky, {0: gate})
        counters = EngineCounters()
        zeros = np.zeros(n_items, dtype=bool)
        results = {}

        def call(key, query):
            try:
                results[key] = service.classification_values(query, timeout=30)
            except Exception as exc:
                results[key] = exc

        with make_service(
            model, max_batch=8, max_wait_ms=50.0, counters=counters
        ) as service:
            wedge = threading.Thread(target=call, args=("wedge", zeros))
            wedge.start()
            assert model.started.wait(5.0)
            threads = [
                threading.Thread(target=call, args=(i, q))
                for i, q in enumerate(clean)
            ] + [threading.Thread(target=call, args=("poison", poison))]
            for t in threads:
                t.start()
            assert _poll(lambda: service.pending() >= 8)
            gate.set()
            wedge.join()
            for t in threads:
                t.join()
        assert isinstance(results["poison"], PoisonQueryError)
        for i in range(7):
            assert np.array_equal(results[i], expected[i])  # bit-identical
        snap = counters.snapshot()
        assert snap["service_poison_queries"] == 1
        assert snap["service_bisections"] >= 1
        assert snap["service_batch_errors"] >= 1
        # The poisoned batch still produced successes, so no breaker trip.
        assert snap.get("service_breaker_trips", 0) == 0


@pytest.mark.faults
class TestWorkerSupervision:
    def test_crash_answers_request_and_restarts(self, evaluator):
        flaky = FlakyBatchModel(evaluator, faults=[ServiceFault(0, "kill")])
        counters = EngineCounters()
        query = np.zeros(evaluator.dataset.n_items, dtype=bool)
        with make_service(
            flaky,
            max_wait_ms=0.0,
            restart_backoff=0.0,
            breaker_threshold=None,
            counters=counters,
        ) as service:
            with pytest.raises(WorkerCrashed):
                service.classification_values(query, timeout=30)
            # The restarted worker serves subsequent traffic.
            values = service.classification_values(query, timeout=30)
            assert np.array_equal(
                values, evaluator.classification_values(query)
            )
            health = service.health()
            assert health.worker_restarts == 1
            assert health.worker_alive
        assert counters.get("service_worker_crashes") == 1
        assert counters.get("service_worker_restarts") == 1

    def test_every_pending_request_answered_exactly_once(self, evaluator):
        # Kill the worker on its first batch while more requests wait in
        # the queue: the in-flight batch fails over to WorkerCrashed, the
        # replacement serves the rest, nothing hangs, nothing doubles.
        flaky = FlakyBatchModel(evaluator, faults=[ServiceFault(0, "kill")])
        counters = EngineCounters()
        n_items = evaluator.dataset.n_items
        queries = [np.eye(n_items, dtype=bool)[i % n_items] for i in range(6)]
        expected = evaluator.classification_values_batch(queries)
        outcomes = [None] * len(queries)
        barrier = threading.Barrier(len(queries))

        def call(i):
            barrier.wait()
            try:
                outcomes[i] = service.classification_values(
                    queries[i], timeout=30
                )
            except WorkerCrashed as exc:
                outcomes[i] = exc

        with make_service(
            flaky,
            max_batch=4,
            max_wait_ms=20.0,
            restart_backoff=0.0,
            breaker_threshold=None,
            counters=counters,
        ) as service:
            threads = [
                threading.Thread(target=call, args=(i,))
                for i in range(len(queries))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            crashed = [
                o for o in outcomes if isinstance(o, WorkerCrashed)
            ]
            served = [
                (i, o)
                for i, o in enumerate(outcomes)
                if isinstance(o, np.ndarray)
            ]
            assert len(crashed) + len(served) == len(queries)
            assert len(crashed) >= 1  # the killed batch failed over
            for i, values in served:
                assert np.array_equal(values, expected[i])
            # The replacement keeps serving.
            follow_up = service.classification_values(queries[0], timeout=30)
            assert np.array_equal(follow_up, expected[0])
        assert service.answered == len(queries) + 1
        assert counters.get("service_worker_restarts") == 1


@pytest.mark.faults
class TestCircuitBreaker:
    def test_trip_reject_recover(self, evaluator):
        flaky = FlakyBatchModel(
            evaluator,
            faults=[ServiceFault(0, "error"), ServiceFault(1, "error")],
        )
        counters = EngineCounters()
        query = np.zeros(evaluator.dataset.n_items, dtype=bool)
        with make_service(
            flaky,
            max_wait_ms=0.0,
            breaker_threshold=2,
            breaker_cooldown=0.2,
            counters=counters,
        ) as service:
            for _ in range(2):  # two consecutive failed batches trip it
                with pytest.raises(Exception, match="injected error"):
                    service.classification_values(query, timeout=30)
            assert _poll(lambda: service.health().breaker == "open")
            with pytest.raises(CircuitOpen) as info:
                service.classification_values(query)
            assert info.value.retry_after >= 0.0
            assert not service.health().ready
            time.sleep(0.25)  # cooldown passes; next request is the probe
            values = service.classification_values(query, timeout=30)
            assert np.array_equal(
                values, evaluator.classification_values(query)
            )
            assert _poll(lambda: service.health().breaker == "closed")
            # Fully recovered: subsequent traffic is admitted normally.
            service.classification_values(query, timeout=30)
        snap = counters.snapshot()
        assert snap["service_breaker_trips"] == 1
        assert snap["service_breaker_rejections"] >= 1
        assert snap["service_breaker_half_opens"] == 1
        assert snap["service_breaker_closes"] == 1

    def test_failed_probe_reopens(self, evaluator):
        flaky = FlakyBatchModel(
            evaluator,
            faults=[ServiceFault(0, "error"), ServiceFault(1, "error")],
        )
        counters = EngineCounters()
        query = np.zeros(evaluator.dataset.n_items, dtype=bool)
        with make_service(
            flaky,
            max_wait_ms=0.0,
            breaker_threshold=1,
            breaker_cooldown=0.15,
            counters=counters,
        ) as service:
            with pytest.raises(Exception, match="injected error"):
                service.classification_values(query, timeout=30)
            assert _poll(lambda: service.health().breaker == "open")
            time.sleep(0.2)
            with pytest.raises(Exception, match="injected error"):
                service.classification_values(query, timeout=30)  # probe fails
            assert _poll(lambda: service.health().breaker == "open")
            with pytest.raises(CircuitOpen):
                service.classification_values(query)
            time.sleep(0.2)
            service.classification_values(query, timeout=30)  # probe succeeds
            assert _poll(lambda: service.health().breaker == "closed")
        assert counters.get("service_breaker_reopens") == 1
        assert counters.get("service_breaker_closes") == 1


@pytest.mark.faults
class TestCloseCrashStress:
    def test_no_hung_futures_with_crashes_and_close(self, evaluator):
        # Interleave submissions, injected worker deaths, and close() across
        # 8 threads.  Every submission must resolve within its timeout to a
        # value or a typed error — no future may hang.
        for round_seed in range(3):
            flaky = FlakyBatchModel(
                evaluator,
                faults=[
                    ServiceFault(1, "kill"),
                    ServiceFault(3, "kill"),
                    ServiceFault(6, "kill"),
                ],
            )
            service = make_service(
                flaky,
                max_batch=4,
                max_wait_ms=0.5,
                restart_backoff=0.0,
                breaker_threshold=None,
                counters=EngineCounters(),
            )
            n_threads, per_thread = 8, 8
            outcomes = [0] * n_threads
            start = threading.Barrier(n_threads + 1)
            rng = np.random.default_rng(round_seed)
            query = rng.random(evaluator.dataset.n_items) < 0.4

            def call(slot):
                start.wait()
                for _ in range(per_thread):
                    try:
                        values = service.classification_values(
                            query, timeout=30
                        )
                        assert values.shape == (
                            evaluator.dataset.n_classes,
                        )
                    except (ServiceClosed, WorkerCrashed):
                        pass
                    outcomes[slot] += 1

            threads = [
                threading.Thread(target=call, args=(i,))
                for i in range(n_threads)
            ]
            for t in threads:
                t.start()
            start.wait()
            time.sleep(0.01)
            service.close()  # race close against crashes and submissions
            for t in threads:
                t.join()
            assert sum(outcomes) == n_threads * per_thread
            assert service.health().state == "closed"


class TestEvaluatorCacheConcurrency:
    def test_concurrent_get_evaluator_hammer(self):
        # Threads race cache misses, hits, and LRU evictions across more
        # datasets than the cache holds; the cache must stay internally
        # consistent and every caller must get a correct evaluator.
        rng = np.random.default_rng(21)
        datasets = [random_relational(rng) for _ in range(6)]
        queries = [
            rng.random((4, ds.n_items)) < 0.4 for ds in datasets
        ]
        expected = [
            FastBSTCEvaluator(ds).classification_values_batch(q)
            for ds, q in zip(datasets, queries)
        ]
        clear_evaluator_cache()
        old_capacity = evaluator_cache_info()[1]
        set_evaluator_cache_size(2)
        failures = []
        start = threading.Barrier(8)

        def hammer(seed):
            order = np.random.default_rng(seed).permutation(
                len(datasets) * 5
            )
            start.wait()
            for j in order:
                i = int(j) % len(datasets)
                evaluator = get_evaluator(datasets[i])
                got = evaluator.classification_values_batch(queries[i])
                if not np.array_equal(got, expected[i]):
                    failures.append(i)

        try:
            threads = [
                threading.Thread(target=hammer, args=(s,)) for s in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not failures
            entries, capacity = evaluator_cache_info()
            assert capacity == 2
            assert 0 < entries <= 2
            # A hit after the storm returns the cached instance.
            ds = datasets[0]
            assert get_evaluator(ds) is get_evaluator(ds)
        finally:
            set_evaluator_cache_size(old_capacity)
            clear_evaluator_cache()


class TestServeConfigSurface:
    """The redesigned config surface: one validated ServeConfig, legacy
    kwargs folded in with a deprecation warning."""

    def test_config_object_is_the_canonical_path(self, evaluator):
        config = ServeConfig(max_batch=4, max_wait_ms=0.5)
        with PredictionService(
            evaluator, config, counters=EngineCounters()
        ) as service:
            assert service.config is config
            assert service.config.max_batch == 4
            label = service.predict({0, 3, 4})
        assert label == int(
            np.argmax(evaluator.classification_values({0, 3, 4}))
        )

    def test_legacy_kwargs_warn_and_fold(self, evaluator):
        with pytest.warns(DeprecationWarning, match="ServeConfig"):
            service = PredictionService(
                evaluator, max_batch=4, counters=EngineCounters()
            )
        try:
            assert service.config.max_batch == 4
            # Untouched fields keep their defaults.
            assert service.config.max_pending == ServeConfig().max_pending
        finally:
            service.close()

    def test_legacy_kwargs_override_config(self, evaluator):
        with pytest.warns(DeprecationWarning):
            service = PredictionService(
                evaluator,
                ServeConfig(max_batch=4, max_wait_ms=7.0),
                max_batch=9,
                counters=EngineCounters(),
            )
        try:
            assert service.config.max_batch == 9
            assert service.config.max_wait_ms == 7.0
        finally:
            service.close()

    def test_unknown_kwarg_is_a_type_error(self, evaluator):
        with pytest.raises(TypeError, match="max_bach"):
            PredictionService(evaluator, max_bach=4)

    def test_config_is_frozen_and_validated(self):
        import dataclasses

        config = ServeConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.max_batch = 2
        with pytest.raises(ValueError):
            ServeConfig(shed_low=4)  # shed_low needs shed_high
        with pytest.raises(ValueError):
            ServeConfig(workers=-1)
        assert ServeConfig(shed_high=8).shed_low == 4  # hysteresis default

    def test_with_overrides_revalidates(self):
        config = ServeConfig(max_batch=4)
        assert config.with_overrides(max_batch=8).max_batch == 8
        with pytest.raises(ValueError):
            config.with_overrides(max_batch=0)


class TestAdaptiveBatching:
    """The AIMD batch-ceiling controller behind adaptive_batch=True."""

    def test_requires_wait_budget(self):
        with pytest.raises(ValueError, match="adaptive_batch"):
            ServeConfig(adaptive_batch=True, max_wait_ms=0)

    def test_disabled_by_default(self, evaluator):
        counters = EngineCounters()
        with make_service(
            evaluator, max_batch=8, counters=counters
        ) as service:
            service.predict({0, 1})
            health = service.health()
            assert health.effective_max_batch == 8
            # The controller never moves when adaptive_batch is off.
            service._adapt(100.0)
            assert service.health().effective_max_batch == 8
        assert counters.get("service_adaptive_shrinks") == 0
        assert counters.get("service_adaptive_grows") == 0

    def test_controller_shrinks_and_regrows(self, evaluator):
        # Drive the controller directly: deterministic, no sleeps.
        counters = EngineCounters()
        config = ServeConfig(max_batch=8, max_wait_ms=10.0, adaptive_batch=True)
        with make_service(evaluator, config, counters=counters) as service:
            budget = 10.0 / 1000.0
            # Over 2x the budget: multiplicative decrease 8 -> 4 -> 2 -> 1.
            for expected in (4, 2, 1, 1):
                service._adapt(3.0 * budget)
                assert service.health().effective_max_batch == expected
            assert counters.get("service_adaptive_shrinks") == 3
            # Under half the budget: additive increase back to the cap.
            for expected in (2, 3, 4):
                service._adapt(0.1 * budget)
                assert service.health().effective_max_batch == expected
            for _ in range(10):
                service._adapt(0.1 * budget)
            assert service.health().effective_max_batch == 8  # capped
            assert counters.get("service_adaptive_grows") == 7  # 1 -> 8
            # In the comfort band (between 0.5x and 2x): no move.
            service._adapt(1.0 * budget)
            assert service.health().effective_max_batch == 8

    def test_slow_model_shrinks_under_load(self, evaluator):
        class _SlowModel:
            def __init__(self, inner, delay):
                self.inner = inner
                self.delay = delay

            @property
            def dataset(self):
                return self.inner.dataset

            def classification_values_batch(self, queries):
                time.sleep(self.delay)
                return self.inner.classification_values_batch(queries)

        counters = EngineCounters()
        config = ServeConfig(
            max_batch=8, max_wait_ms=2.0, adaptive_batch=True
        )
        slow = _SlowModel(evaluator, delay=0.02)  # 5x the 4ms shrink bar
        with make_service(slow, config, counters=counters) as service:
            for _ in range(4):
                service.predict({0, 1})
            health = service.health()
            assert health.effective_max_batch == 1
        assert counters.get("service_adaptive_shrinks") >= 3
