"""Micro-batching prediction service and evaluator-cache concurrency."""

import threading

import numpy as np
import pytest

from conftest import random_relational
from repro.core.fast import (
    FastBSTCEvaluator,
    clear_evaluator_cache,
    evaluator_cache_info,
    get_evaluator,
    set_evaluator_cache_size,
)
from repro.evaluation.timing import EngineCounters
from repro.serving import PredictionService, ServiceClosed


@pytest.fixture
def evaluator(example):
    return FastBSTCEvaluator(example)


def _queries(rng, n_items, n=24):
    return [rng.random(n_items) < 0.4 for _ in range(n)]


class TestCorrectness:
    def test_values_match_direct_evaluation(self, evaluator):
        rng = np.random.default_rng(3)
        queries = _queries(rng, evaluator.dataset.n_items)
        with PredictionService(evaluator, counters=EngineCounters()) as service:
            served = [service.classification_values(q) for q in queries]
        direct = evaluator.classification_values_batch(queries)
        assert np.array_equal(np.asarray(served), direct)

    def test_predict_matches_argmax(self, evaluator):
        query = np.zeros(evaluator.dataset.n_items, dtype=bool)
        query[[0, 3, 4]] = True
        with PredictionService(evaluator, counters=EngineCounters()) as service:
            label = service.predict(query)
        assert label == int(np.argmax(evaluator.classification_values(query)))

    def test_concurrent_callers_get_their_own_rows(self, evaluator):
        rng = np.random.default_rng(5)
        queries = _queries(rng, evaluator.dataset.n_items, n=64)
        expected = evaluator.classification_values_batch(queries)
        results = [None] * len(queries)

        def call(i):
            results[i] = service.classification_values(queries[i])

        with PredictionService(
            evaluator, max_batch=8, max_wait_ms=5.0, counters=EngineCounters()
        ) as service:
            threads = [
                threading.Thread(target=call, args=(i,))
                for i in range(len(queries))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert np.array_equal(np.asarray(results), expected)


class TestBatching:
    def test_concurrent_load_coalesces(self, evaluator):
        counters = EngineCounters()
        rng = np.random.default_rng(9)
        queries = _queries(rng, evaluator.dataset.n_items, n=32)
        barrier = threading.Barrier(len(queries))

        def call(q):
            barrier.wait()
            service.classification_values(q)

        with PredictionService(
            evaluator, max_batch=8, max_wait_ms=20.0, counters=counters
        ) as service:
            threads = [
                threading.Thread(target=call, args=(q,)) for q in queries
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        snap = counters.snapshot()
        assert snap["service_requests"] == len(queries)
        assert snap["service_batched_queries"] == len(queries)
        # 32 simultaneous callers over batches of <= 8 must coalesce at
        # least once; all-singleton batching would mean 32 batches.
        assert snap["max_service_batch"] > 1
        assert snap["service_batches"] < len(queries)
        assert snap["service_compute_seconds"] > 0
        assert snap["service_latency_seconds"] > 0

    def test_lone_request_is_answered(self, evaluator):
        counters = EngineCounters()
        with PredictionService(
            evaluator, max_wait_ms=0.0, counters=counters
        ) as service:
            query = np.zeros(evaluator.dataset.n_items, dtype=bool)
            service.classification_values(query)
        assert counters.get("service_batches") == 1
        assert counters.get("max_service_batch") == 1


class TestLifecycle:
    def test_submit_after_close_raises(self, evaluator):
        counters = EngineCounters()
        service = PredictionService(evaluator, counters=counters)
        service.close()
        assert service.closed
        with pytest.raises(ServiceClosed):
            service.classification_values(
                np.zeros(evaluator.dataset.n_items, dtype=bool)
            )
        assert counters.get("service_rejected") == 1
        service.close()  # idempotent

    def test_timeout(self, example):
        class Stuck:
            dataset = example

            def classification_values_batch(self, queries):
                event.wait()
                return np.zeros((len(queries), example.n_classes))

        event = threading.Event()
        service = PredictionService(Stuck(), counters=EngineCounters())
        try:
            with pytest.raises(TimeoutError):
                service.classification_values(
                    np.zeros(example.n_items, dtype=bool), timeout=0.05
                )
        finally:
            event.set()
            service.close()

    def test_batch_error_propagates_to_every_caller(self, example):
        class Broken:
            dataset = example

            def classification_values_batch(self, queries):
                raise RuntimeError("kernel exploded")

        counters = EngineCounters()
        errors = []

        def call(service):
            try:
                service.classification_values(
                    np.zeros(example.n_items, dtype=bool)
                )
            except RuntimeError as exc:
                errors.append(exc)

        with PredictionService(
            Broken(), max_wait_ms=10.0, counters=counters
        ) as service:
            threads = [
                threading.Thread(target=call, args=(service,))
                for _ in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(errors) == 6
        assert all("kernel exploded" in str(e) for e in errors)
        assert counters.get("service_batch_errors") >= 1
        assert service.answered == 6

    def test_backpressure_queue_stays_bounded(self, evaluator):
        # With max_pending=2 the queue can never hold more than 2 requests;
        # submitters block instead.  The run must still answer everything.
        rng = np.random.default_rng(13)
        queries = _queries(rng, evaluator.dataset.n_items, n=20)
        with PredictionService(
            evaluator,
            max_batch=4,
            max_wait_ms=1.0,
            max_pending=2,
            counters=EngineCounters(),
        ) as service:
            results = [None] * len(queries)

            def call(i):
                results[i] = service.classification_values(queries[i])
                assert service.pending() <= 2

            threads = [
                threading.Thread(target=call, args=(i,))
                for i in range(len(queries))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert all(r is not None for r in results)
        assert service.answered == len(queries)

    def test_invalid_parameters(self, evaluator):
        with pytest.raises(ValueError):
            PredictionService(evaluator, max_batch=0)
        with pytest.raises(ValueError):
            PredictionService(evaluator, max_wait_ms=-1.0)
        with pytest.raises(ValueError):
            PredictionService(evaluator, max_pending=0)


class TestShutdownStress:
    def test_every_request_answered_exactly_once_under_shutdown(
        self, evaluator
    ):
        # Hammer the service from many threads while the main thread closes
        # it mid-flight.  Every submission must end in exactly one outcome:
        # an answer (counted by the service) or a ServiceClosed rejection.
        # No request may hang or be answered twice.
        for round_seed in range(5):
            rng = np.random.default_rng(round_seed)
            counters = EngineCounters()
            service = PredictionService(
                evaluator,
                max_batch=4,
                max_wait_ms=0.5,
                max_pending=8,
                counters=counters,
            )
            n_threads, per_thread = 8, 16
            answered = [0] * n_threads
            rejected = [0] * n_threads
            start = threading.Barrier(n_threads + 1)

            def call(slot):
                q = rng.random(evaluator.dataset.n_items) < 0.4
                start.wait()
                for _ in range(per_thread):
                    try:
                        values = service.classification_values(q, timeout=30)
                        assert values.shape == (evaluator.dataset.n_classes,)
                        answered[slot] += 1
                    except ServiceClosed:
                        rejected[slot] += 1

            threads = [
                threading.Thread(target=call, args=(i,))
                for i in range(n_threads)
            ]
            for t in threads:
                t.start()
            start.wait()
            service.close()  # race the close against in-flight submissions
            for t in threads:
                t.join()
            submitted = n_threads * per_thread
            assert sum(answered) + sum(rejected) == submitted
            assert service.answered == sum(answered)
            snap = counters.snapshot()
            assert snap.get("service_requests", 0) == sum(answered)
            assert snap.get("service_rejected", 0) == sum(rejected)


class TestEvaluatorCacheConcurrency:
    def test_concurrent_get_evaluator_hammer(self):
        # Threads race cache misses, hits, and LRU evictions across more
        # datasets than the cache holds; the cache must stay internally
        # consistent and every caller must get a correct evaluator.
        rng = np.random.default_rng(21)
        datasets = [random_relational(rng) for _ in range(6)]
        queries = [
            rng.random((4, ds.n_items)) < 0.4 for ds in datasets
        ]
        expected = [
            FastBSTCEvaluator(ds).classification_values_batch(q)
            for ds, q in zip(datasets, queries)
        ]
        clear_evaluator_cache()
        old_capacity = evaluator_cache_info()[1]
        set_evaluator_cache_size(2)
        failures = []
        start = threading.Barrier(8)

        def hammer(seed):
            order = np.random.default_rng(seed).permutation(
                len(datasets) * 5
            )
            start.wait()
            for j in order:
                i = int(j) % len(datasets)
                evaluator = get_evaluator(datasets[i])
                got = evaluator.classification_values_batch(queries[i])
                if not np.array_equal(got, expected[i]):
                    failures.append(i)

        try:
            threads = [
                threading.Thread(target=hammer, args=(s,)) for s in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not failures
            entries, capacity = evaluator_cache_info()
            assert capacity == 2
            assert 0 < entries <= 2
            # A hit after the storm returns the cached instance.
            ds = datasets[0]
            assert get_evaluator(ds) is get_evaluator(ds)
        finally:
            set_evaluator_cache_size(old_capacity)
            clear_evaluator_cache()
