"""Budget / cutoff protocol tests."""

import math
import time

import pytest

from repro.evaluation.timing import (
    Budget,
    BudgetExceeded,
    TimedOutcome,
    run_with_budget,
    timed,
)


class TestBudget:
    def test_unlimited_never_expires(self):
        budget = Budget.unlimited()
        budget.check()
        assert not budget.expired
        assert budget.remaining() == math.inf

    def test_expired_budget_raises(self):
        budget = Budget(1e-9)
        time.sleep(0.001)
        with pytest.raises(BudgetExceeded) as err:
            budget.check()
        assert err.value.cutoff == 1e-9
        assert err.value.elapsed >= 1e-9

    def test_restart(self):
        budget = Budget(0.05)
        time.sleep(0.01)
        first = budget.elapsed()
        budget.restart()
        assert budget.elapsed() < first

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            Budget(0)


class TestRunWithBudget:
    def test_finishing_step(self):
        outcome = run_with_budget(lambda budget: 42, cutoff=10.0)
        assert outcome.finished and outcome.value == 42
        assert not outcome.dnf

    def test_dnf_step_reports_cutoff(self):
        def step(budget):
            while True:
                budget.check()

        outcome = run_with_budget(step, cutoff=0.02)
        assert outcome.dnf
        assert outcome.seconds == 0.02
        assert outcome.value is None

    def test_other_exceptions_propagate(self):
        def step(budget):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            run_with_budget(step, cutoff=1.0)


class TestTimed:
    def test_returns_seconds_and_value(self):
        seconds, value = timed(lambda: "ok")
        assert value == "ok"
        assert seconds >= 0.0
