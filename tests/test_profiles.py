"""Dataset profile tests (Table 2 numbers)."""

import pytest

from repro.datasets.profiles import (
    MULTICLASS_PROFILE,
    PAPER_PROFILES,
    profile,
    scaled,
)


class TestPaperProfiles:
    def test_table2_values(self):
        expected = {
            "ALL": (7129, ("ALL", "AML"), (47, 25)),
            "LC": (12533, ("MPM", "ADCA"), (31, 150)),
            "PC": (12600, ("tumor", "normal"), (77, 59)),
            "OC": (15154, ("tumor", "normal"), (162, 91)),
        }
        for name, (genes, labels, counts) in expected.items():
            prof = PAPER_PROFILES[name]
            assert prof.n_genes == genes
            assert prof.class_labels == labels
            assert prof.class_counts == counts

    def test_table3_training_counts(self):
        assert PAPER_PROFILES["ALL"].given_training == (27, 11)
        assert PAPER_PROFILES["LC"].given_training == (16, 16)
        assert PAPER_PROFILES["PC"].given_training == (52, 50)
        assert PAPER_PROFILES["OC"].given_training == (133, 77)

    def test_describe_row(self):
        row = PAPER_PROFILES["ALL"].describe_row()
        assert row == ("ALL", 7129, "ALL", "AML", 47, 25)


class TestScaled:
    def test_scaled_smaller(self):
        for name in PAPER_PROFILES:
            small = scaled(name)
            big = PAPER_PROFILES[name]
            assert small.n_genes < big.n_genes
            assert small.n_samples < big.n_samples
            assert small.n_classes == big.n_classes

    def test_scaled_training_fits(self):
        for name in PAPER_PROFILES:
            small = scaled(name)
            for count, total in zip(small.given_training, small.class_counts):
                assert 0 < count < total

    def test_lookup_by_name(self):
        assert profile("PC").name == "PC"
        assert profile("PC-scaled").name == "PC-scaled"
        assert profile(MULTICLASS_PROFILE.name) is MULTICLASS_PROFILE

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            profile("BRCA")

    def test_multiclass_has_three_classes(self):
        assert MULTICLASS_PROFILE.n_classes == 3
