"""Entropy-MDL discretization tests (Fayyad–Irani MDLP)."""

import numpy as np
import pytest

from repro.datasets.dataset import ExpressionMatrix
from repro.datasets.discretize import (
    EntropyDiscretizer,
    GenePartition,
    class_entropy,
    mdlp_cut_points,
)


class TestEntropy:
    def test_pure_is_zero(self):
        assert class_entropy(np.array([5, 0])) == 0.0

    def test_uniform_binary_is_one(self):
        assert class_entropy(np.array([4, 4])) == pytest.approx(1.0)

    def test_empty_is_zero(self):
        assert class_entropy(np.array([0, 0])) == 0.0


class TestMdlpCutPoints:
    def test_perfect_separation_one_cut(self):
        values = [1.0, 1.1, 1.2, 5.0, 5.1, 5.2]
        labels = [0, 0, 0, 1, 1, 1]
        cuts = mdlp_cut_points(values, labels, 2)
        assert len(cuts) == 1
        assert 1.2 < cuts[0] < 5.0

    def test_random_noise_no_cut(self):
        rng = np.random.default_rng(1)
        values = rng.random(40)
        labels = rng.integers(0, 2, 40)
        # Noise should essentially never pass the MDL criterion.
        assert mdlp_cut_points(values, labels.tolist(), 2) == []

    def test_constant_values_no_cut(self):
        assert mdlp_cut_points([3.0] * 10, [0, 1] * 5, 2) == []

    def test_three_way_separation_two_cuts(self):
        values = (
            [1.0 + 0.01 * i for i in range(8)]
            + [5.0 + 0.01 * i for i in range(8)]
            + [9.0 + 0.01 * i for i in range(8)]
        )
        labels = [0] * 8 + [1] * 8 + [2] * 8
        cuts = mdlp_cut_points(values, labels, 3)
        assert len(cuts) == 2

    def test_cuts_sorted(self):
        values = list(range(30))
        labels = [0] * 10 + [1] * 10 + [0] * 10
        cuts = mdlp_cut_points([float(v) for v in values], labels, 2)
        assert cuts == sorted(cuts)

    def test_single_sample(self):
        assert mdlp_cut_points([1.0], [0], 2) == []


class TestGenePartition:
    def test_interval_of(self):
        part = GenePartition(0, "g", (1.0, 3.0))
        assert part.interval_of(0.5) == 0
        assert part.interval_of(1.0) == 0  # boundary stays low
        assert part.interval_of(2.0) == 1
        assert part.interval_of(10.0) == 2
        assert part.n_intervals == 3

    def test_interval_names(self):
        part = GenePartition(0, "g", (1.0,))
        assert part.interval_name(0) == "g@(-inf,1]"
        assert part.interval_name(1) == "g@(1,+inf]"


def _matrix(values, labels, names=None):
    values = np.asarray(values, dtype=float)
    names = names or tuple(f"g{i}" for i in range(values.shape[1]))
    return ExpressionMatrix(
        gene_names=tuple(names),
        values=values,
        labels=tuple(labels),
        class_names=("a", "b"),
    )


class TestEntropyDiscretizer:
    def test_informative_gene_kept_noise_dropped(self):
        rng = np.random.default_rng(2)
        n = 30
        labels = [0] * 15 + [1] * 15
        informative = np.concatenate([rng.normal(0, 1, 15), rng.normal(5, 1, 15)])
        noise = rng.normal(0, 1, n)
        data = _matrix(np.column_stack([informative, noise]), labels)
        disc = EntropyDiscretizer().fit(data)
        assert disc.n_kept_genes == 1
        assert disc.kept_gene_indices() == [0]
        assert disc.n_items == 2

    def test_transform_one_item_per_kept_gene(self):
        rng = np.random.default_rng(3)
        labels = [0] * 12 + [1] * 12
        cols = [
            np.concatenate([rng.normal(0, 1, 12), rng.normal(6, 1, 12)]),
            np.concatenate([rng.normal(3, 1, 12), rng.normal(-3, 1, 12)]),
        ]
        data = _matrix(np.column_stack(cols), labels)
        rel = EntropyDiscretizer().fit_transform(data)
        for sample in rel.samples:
            assert len(sample) == 2  # one interval item per kept gene

    def test_train_test_consistency(self):
        """A test sample equal to a training sample maps to the same items."""
        rng = np.random.default_rng(4)
        labels = [0] * 10 + [1] * 10
        col = np.concatenate([rng.normal(0, 1, 10), rng.normal(5, 1, 10)])
        data = _matrix(col[:, None], labels)
        disc = EntropyDiscretizer().fit(data)
        rel = disc.transform(data)
        again = disc.transform_values(data.values)
        assert list(rel.samples) == again

    def test_transform_before_fit_raises(self):
        disc = EntropyDiscretizer()
        with pytest.raises(RuntimeError):
            disc.transform_values(np.zeros((1, 2)))

    def test_labels_preserved(self):
        rng = np.random.default_rng(5)
        labels = [0] * 8 + [1] * 8
        col = np.concatenate([rng.normal(0, 0.5, 8), rng.normal(4, 0.5, 8)])
        data = _matrix(col[:, None], labels)
        rel = EntropyDiscretizer().fit_transform(data)
        assert rel.labels == tuple(labels)
        assert rel.class_names == ("a", "b")

    def test_item_names_carry_gene_and_interval(self):
        rng = np.random.default_rng(6)
        labels = [0] * 10 + [1] * 10
        col = np.concatenate([rng.normal(0, 1, 10), rng.normal(6, 1, 10)])
        data = _matrix(col[:, None], labels, names=("MYC",))
        disc = EntropyDiscretizer().fit(data)
        assert all(name.startswith("MYC@") for name in disc.item_names)
