"""Shared fixtures: the running example and small random datasets.

Also installs a per-test wall-clock ceiling when ``REPRO_TEST_TIMEOUT`` is
set (seconds): a SIGALRM-based guard so a hung worker or deadlocked pool
fails the one test instead of wedging the whole suite.  CI sets it; local
runs are unlimited unless opted in.

When ``REPRO_COUNTER_DUMP`` is set to a path, the process-wide engine
counters accumulated across the whole run are written there as JSON at
session end — CI uploads the dump from the fault-suite step so a failing
resilience run leaves its counter evidence behind.  Several tests call
``engine_counters.reset()`` mid-run, so the dump is built from per-test
positive deltas (captured at each teardown) rather than one final
snapshot a reset could have wiped.
"""

from __future__ import annotations

import json
import os
import signal
import threading

import numpy as np
import pytest

from repro.datasets.dataset import RelationalDataset, running_example
from repro.datasets.profiles import DatasetProfile

_TEST_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "0") or "0")
_COUNTER_DUMP = os.environ.get("REPRO_COUNTER_DUMP", "")


_counter_total: dict = {}
_counter_last: dict = {}


def _accumulate_counters() -> None:
    from repro.evaluation.timing import engine_counters

    snapshot = engine_counters.snapshot()
    for name, value in snapshot.items():
        previous = _counter_last.get(name, 0.0)
        # A value below its last observation means the counter was reset
        # since then; everything currently on it is new.
        delta = value - previous if value >= previous else value
        if delta > 0:
            _counter_total[name] = _counter_total.get(name, 0.0) + delta
    _counter_last.clear()
    _counter_last.update(snapshot)


def pytest_runtest_teardown(item, nextitem):
    if _COUNTER_DUMP:
        _accumulate_counters()


def pytest_sessionfinish(session, exitstatus):
    if not _COUNTER_DUMP:
        return
    _accumulate_counters()
    payload = dict(_counter_total)
    payload["_exitstatus"] = int(exitstatus)
    with open(_COUNTER_DUMP, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    use_alarm = (
        _TEST_TIMEOUT > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not use_alarm:
        yield
        return

    def _on_timeout(signum, frame):
        raise TimeoutError(
            f"test exceeded REPRO_TEST_TIMEOUT={_TEST_TIMEOUT:g}s wall clock"
        )

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.setitimer(signal.ITIMER_REAL, _TEST_TIMEOUT)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def example():
    return running_example()


@pytest.fixture
def tiny_profile():
    """A very small profile for fast pipeline tests."""
    return DatasetProfile(
        name="TINY",
        long_name="Tiny synthetic",
        n_genes=60,
        class_labels=("pos", "neg"),
        class_counts=(14, 12),
        given_training=(9, 8),
        informative_fraction=0.2,
        effect_size=2.2,
    )


def random_relational(
    rng: np.random.Generator,
    n_samples_range=(4, 12),
    n_items_range=(3, 14),
    n_classes_range=(2, 4),
) -> RelationalDataset:
    """A random boolean dataset with every class represented."""
    while True:
        n = int(rng.integers(*n_samples_range))
        m = int(rng.integers(*n_items_range))
        k = int(rng.integers(*n_classes_range))
        if n < k:
            continue
        matrix = rng.random((n, m)) < rng.uniform(0.2, 0.8)
        labels = rng.integers(0, k, n)
        if len(set(labels.tolist())) == k:
            return RelationalDataset.from_bool_matrix(
                matrix, labels.tolist(), class_names=[f"c{i}" for i in range(k)]
            )
