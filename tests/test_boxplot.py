"""Boxplot statistics tests (the paper's Boxplot Interpretation paragraph)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.boxplot import boxplot_stats


class TestBasics:
    def test_no_outliers_whiskers_are_min_max(self):
        stats = boxplot_stats([0.1, 0.2, 0.3, 0.4, 0.5])
        assert stats.lower_whisker == 0.1
        assert stats.upper_whisker == 0.5
        assert stats.near_outliers == () and stats.far_outliers == ()

    def test_median_and_quartiles(self):
        stats = boxplot_stats([1, 2, 3, 4, 5])
        assert stats.median == 3
        assert stats.q1 == 2 and stats.q3 == 4
        assert stats.iqr == 2

    def test_near_outlier_classified(self):
        """A point past 1.5*IQR but within 3*IQR is a near outlier (circle)."""
        data = [10, 11, 12, 13, 14, 19.5]
        stats = boxplot_stats(data)
        assert 19.5 in stats.near_outliers
        assert stats.upper_whisker == 14

    def test_far_outlier_classified(self):
        """Past 3*IQR draws as an asterisk."""
        data = [10, 11, 12, 13, 14, 40]
        stats = boxplot_stats(data)
        assert 40 in stats.far_outliers
        assert not stats.near_outliers

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            boxplot_stats([])

    def test_single_value(self):
        stats = boxplot_stats([0.7])
        assert stats.median == 0.7
        assert stats.minimum == stats.maximum == 0.7

    def test_render_contains_summary(self):
        text = boxplot_stats([0.5, 0.6, 0.7]).render("demo")
        assert "med=0.600" in text and "demo" in text


class TestProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_invariants(self, values):
        stats = boxplot_stats(values)
        assert stats.minimum <= stats.q1 <= stats.median <= stats.q3 <= stats.maximum
        assert stats.lower_whisker >= stats.q1 - 1.5 * stats.iqr - 1e-12
        assert stats.upper_whisker <= stats.q3 + 1.5 * stats.iqr + 1e-12
        # Every point is whiskered or an outlier.
        outliers = set(stats.near_outliers) | set(stats.far_outliers)
        for v in values:
            assert (
                stats.lower_whisker - 1e-12 <= v <= stats.upper_whisker + 1e-12
                or v in outliers
            )
        assert stats.n == len(values)
