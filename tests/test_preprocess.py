"""Preprocessing pipeline tests."""

import numpy as np
import pytest

from repro.datasets.dataset import ExpressionMatrix
from repro.datasets.preprocess import (
    PreprocessingPipeline,
    floor_and_log2,
    impute_missing,
    quantile_normalize,
    variance_filter,
)


def matrix(values, labels=None):
    values = np.asarray(values, dtype=float)
    labels = labels or [0] * (values.shape[0] // 2) + [1] * (
        values.shape[0] - values.shape[0] // 2
    )
    return ExpressionMatrix(
        gene_names=tuple(f"g{j}" for j in range(values.shape[1])),
        values=values,
        labels=tuple(labels),
        class_names=("a", "b"),
    )


class TestFloorAndLog:
    def test_floors_then_logs(self):
        data = matrix([[0.5, 4.0], [8.0, 16.0]])
        out = floor_and_log2(data, floor=1.0)
        np.testing.assert_allclose(out.values, [[0.0, 2.0], [3.0, 4.0]])

    def test_invalid_floor(self):
        with pytest.raises(ValueError):
            floor_and_log2(matrix([[1.0]]), floor=0.0)


class TestQuantileNormalize:
    def test_rows_share_distribution(self):
        rng = np.random.default_rng(0)
        data = matrix(rng.normal(size=(6, 40)) + rng.normal(size=(6, 1)) * 3)
        out = quantile_normalize(data)
        sorted_rows = np.sort(out.values, axis=1)
        for row in sorted_rows[1:]:
            np.testing.assert_allclose(row, sorted_rows[0], atol=1e-9)

    def test_rank_order_preserved_within_sample(self):
        data = matrix([[3.0, 1.0, 2.0], [10.0, 30.0, 20.0]])
        out = quantile_normalize(data)
        assert np.argsort(out.values[0]).tolist() == [1, 2, 0]
        assert np.argsort(out.values[1]).tolist() == [0, 2, 1]


class TestVarianceFilter:
    def test_keeps_most_variable(self):
        values = np.zeros((4, 3))
        values[:, 1] = [0, 10, 0, 10]   # high variance
        values[:, 2] = [0, 1, 0, 1]     # medium
        data = matrix(values)
        out = variance_filter(data, keep_fraction=1 / 3)
        assert out.gene_names == ("g1",)

    def test_order_preserved(self):
        rng = np.random.default_rng(1)
        data = matrix(rng.normal(size=(5, 10)))
        out = variance_filter(data, keep_fraction=0.5)
        indices = [data.gene_names.index(n) for n in out.gene_names]
        assert indices == sorted(indices)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            variance_filter(matrix([[1.0]]), keep_fraction=0.0)


class TestImputation:
    def test_per_class_mean(self):
        values = np.array(
            [[1.0, np.nan], [3.0, 5.0], [10.0, 6.0], [np.nan, 8.0]]
        )
        data = matrix(values, labels=[0, 0, 1, 1])
        out = impute_missing(data)
        assert out.values[0, 1] == pytest.approx(5.0)   # class-a mean of g1
        assert out.values[3, 0] == pytest.approx(10.0)  # class-b mean of g0

    def test_no_missing_is_identity(self):
        data = matrix([[1.0, 2.0], [3.0, 4.0]])
        out = impute_missing(data)
        np.testing.assert_array_equal(out.values, data.values)

    def test_all_missing_gene_falls_back(self):
        values = np.array([[np.nan, 1.0], [np.nan, 2.0]])
        data = matrix(values, labels=[0, 1])
        out = impute_missing(data)
        assert not np.isnan(out.values).any()


class TestPipeline:
    def test_full_pipeline_feeds_discretizer(self):
        from repro.datasets.discretize import EntropyDiscretizer

        rng = np.random.default_rng(2)
        n = 24
        labels = [0] * 12 + [1] * 12
        raw = np.abs(rng.normal(200, 50, size=(n, 30)))
        raw[:12, 0] *= 8  # informative gene on raw scale
        data = matrix(raw, labels=labels)
        processed = PreprocessingPipeline(keep_fraction=0.5).apply(data)
        assert processed.n_genes == 15
        disc = EntropyDiscretizer().fit(processed)
        assert 0 in [processed.gene_names.index(g.gene_name) if g.gene_name in processed.gene_names else -1 for g in disc.partitions] or disc.n_kept_genes >= 1
