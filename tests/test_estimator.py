"""The unified Estimator protocol, the batched BSTCE kernel, the evaluator
cache, and fold-parallel cross-validation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.cba import CBAClassifier
from repro.baselines.forest import RandomForestClassifier
from repro.baselines.irg import IRGClassifier
from repro.baselines.rcbt import RCBTClassifier
from repro.baselines.svm import SVMClassifier
from repro.baselines.tree import AdaBoostClassifier, BaggingClassifier, DecisionTree
from repro.bst.table import build_all_bsts
from repro.core.auto import AutoBSTClassifier
from repro.core.bstce import bstce
from repro.core.classifier import BSTClassifier
from repro.core.estimator import Estimator, NotFittedError, resolve_engine
from repro.core.fast import (
    FastBSTCEvaluator,
    clear_evaluator_cache,
    evaluator_cache_info,
    get_evaluator,
    set_evaluator_cache_size,
)
from repro.core.mcbar_classifier import MCBARClassifier
from repro.datasets.dataset import RelationalDataset, running_example
from repro.evaluation.crossval import TrainingSize, make_tests, resolve_n_jobs
from repro.evaluation.runners import BSTCRunner, run_tests
from repro.evaluation.timing import EngineCounters, engine_counters
from repro.experiments.base import ExperimentConfig

from conftest import random_relational

Q = frozenset({0, 3, 4})


def _continuous_problem():
    """A tiny separable continuous problem for the matrix classifiers."""
    rng = np.random.default_rng(3)
    X0 = rng.normal(0.0, 0.4, size=(12, 4))
    X1 = rng.normal(2.0, 0.4, size=(12, 4))
    X = np.vstack([X0, X1])
    y = np.array([0] * 12 + [1] * 12)
    return X, y


def _set_cases():
    """(name, factory, fit) for every item-set classifier."""
    example = running_example()
    return [
        ("bstc-fast", lambda: BSTClassifier(engine="fast"), example),
        ("bstc-reference", lambda: BSTClassifier(engine="reference"), example),
        ("mcbar", lambda: MCBARClassifier(k=2), example),
        ("auto", lambda: AutoBSTClassifier(), example),
        ("cba", lambda: CBAClassifier(min_support=0.2, min_confidence=0.6), example),
        ("irg", lambda: IRGClassifier(min_support=0.3, min_confidence=0.9), example),
        ("rcbt", lambda: RCBTClassifier(k=3, min_support=0.3, nl=5), example),
    ]


def _matrix_cases():
    """(name, factory) for every continuous-feature classifier."""
    return [
        ("svm", lambda: SVMClassifier(C=1.0)),
        ("forest", lambda: RandomForestClassifier(n_estimators=5, seed=0)),
        ("tree", lambda: DecisionTree()),
        ("bagging", lambda: BaggingClassifier(n_estimators=5, seed=0)),
        ("adaboost", lambda: AdaBoostClassifier(n_estimators=5, seed=0)),
    ]


class TestProtocolConformance:
    @pytest.mark.parametrize(
        "factory,example",
        [pytest.param(f, ds, id=name) for name, f, ds in _set_cases()],
    )
    def test_set_classifiers(self, factory, example):
        model = factory()
        assert isinstance(model, Estimator)
        with pytest.raises(NotFittedError):
            model.predict(Q)
        with pytest.raises(NotFittedError):
            model.classification_values(Q)
        fitted = model.fit(example)
        assert fitted is model
        prediction = model.predict(Q)
        assert isinstance(prediction, int)
        batch = model.predict_batch(list(example.samples))
        assert isinstance(batch, np.ndarray)
        assert batch.dtype == np.int64
        assert batch.shape == (example.n_samples,)
        assert batch.tolist() == [model.predict(s) for s in example.samples]
        values = model.classification_values(Q)
        assert isinstance(values, np.ndarray)
        assert values.ndim == 1
        assert values.shape[0] == example.n_classes
        assert np.isfinite(values).all()

    @pytest.mark.parametrize(
        "factory",
        [pytest.param(f, id=name) for name, f in _matrix_cases()],
    )
    def test_matrix_classifiers(self, factory):
        X, y = _continuous_problem()
        model = factory()
        assert isinstance(model, Estimator)
        with pytest.raises(NotFittedError):
            model.predict(X[0])
        with pytest.raises(NotFittedError):
            model.classification_values(X[0])
        fitted = model.fit(X, y)
        assert fitted is model
        prediction = model.predict(X[0])
        assert isinstance(prediction, int)
        batch = model.predict_batch(X)
        assert isinstance(batch, np.ndarray)
        assert batch.dtype == np.int64
        assert batch.shape == (X.shape[0],)
        assert batch.tolist() == [model.predict(x) for x in X]
        # Legacy 2-D predict still returns the full label array.
        legacy = model.predict(X)
        assert isinstance(legacy, np.ndarray)
        assert legacy.tolist() == batch.tolist()
        values = model.classification_values(X[0])
        assert isinstance(values, np.ndarray)
        assert values.ndim == 1
        assert values.shape[0] >= 2
        assert np.isfinite(values).all()

    def test_engine_validation_is_shared(self):
        messages = set()
        with pytest.raises(ValueError) as excinfo:
            resolve_engine("gpu")
        messages.add(str(excinfo.value))
        with pytest.raises(ValueError) as excinfo:
            BSTClassifier(engine="gpu")
        messages.add(str(excinfo.value))
        with pytest.raises(ValueError) as excinfo:
            ExperimentConfig(engine="gpu")
        messages.add(str(excinfo.value))
        assert len(messages) == 1  # one source of truth, one message

    def test_arithmetization_validation_is_shared(self):
        messages = set()
        for trigger in (
            lambda: BSTClassifier(arithmetization="median"),
            lambda: FastBSTCEvaluator(running_example(), "median"),
            lambda: ExperimentConfig(arithmetization="median"),
        ):
            with pytest.raises(ValueError) as excinfo:
                trigger()
            messages.add(str(excinfo.value))
        assert len(messages) == 1


@st.composite
def batched_datasets(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    m = draw(st.integers(min_value=1, max_value=12))
    k = draw(st.integers(min_value=2, max_value=3))
    rows = [
        frozenset(j for j in range(m) if draw(st.booleans())) for _ in range(n)
    ]
    labels = [draw(st.integers(min_value=0, max_value=k - 1)) for _ in range(n)]
    ds = RelationalDataset(
        item_names=tuple(f"g{j}" for j in range(m)),
        class_names=tuple(f"c{i}" for i in range(k)),
        samples=tuple(rows),
        labels=tuple(labels),
    )
    n_queries = draw(st.integers(min_value=1, max_value=6))
    queries = [
        frozenset(j for j in range(m) if draw(st.booleans()))
        for _ in range(n_queries)
    ]
    return ds, queries


class TestBatchedKernel:
    @given(batched_datasets())
    @settings(max_examples=120, deadline=None)
    def test_batch_matches_per_query_and_reference(self, case):
        ds, queries = case
        evaluator = FastBSTCEvaluator(ds, "min")
        batch = evaluator.classification_values_batch(queries)
        assert batch.shape == (len(queries), ds.n_classes)
        bsts = build_all_bsts(ds)
        for row, query in zip(batch, queries):
            serial = evaluator.classification_values(query)
            np.testing.assert_allclose(row, serial, atol=1e-5)
            for class_id in range(ds.n_classes):
                expected = bstce(bsts[class_id], query, "min")
                assert row[class_id] == pytest.approx(expected, abs=1e-5)

    @given(batched_datasets())
    @settings(max_examples=40, deadline=None)
    def test_batch_matches_per_query_other_arithmetizations(self, case):
        ds, queries = case
        for arith in ("product", "mean"):
            evaluator = FastBSTCEvaluator(ds, arith)
            batch = evaluator.classification_values_batch(queries)
            for row, query in zip(batch, queries):
                np.testing.assert_allclose(
                    row, evaluator.classification_values(query), atol=1e-5
                )

    def test_empty_batch(self, example):
        evaluator = FastBSTCEvaluator(example)
        batch = evaluator.classification_values_batch([])
        assert batch.shape == (0, example.n_classes)
        assert BSTClassifier().fit(example).predict_batch([]).shape == (0,)

    def test_two_dimensional_ndarray_input(self, example):
        evaluator = FastBSTCEvaluator(example)
        qmat = example.bool_matrix
        batch = evaluator.classification_values_batch(qmat)
        stacked = np.stack(
            [evaluator.classification_values(row) for row in qmat]
        )
        np.testing.assert_allclose(batch, stacked, atol=1e-5)

    def test_wrong_width_raises(self, example):
        evaluator = FastBSTCEvaluator(example)
        with pytest.raises(ValueError):
            evaluator.classification_values_batch(
                np.zeros((2, example.n_items + 1), dtype=bool)
            )

    def test_batch_crosses_block_boundary(self):
        """A batch larger than the internal block size still agrees with the
        per-query path (exercises the block loop)."""
        rng = np.random.default_rng(11)
        ds = random_relational(rng, n_samples_range=(8, 12))
        evaluator = FastBSTCEvaluator(ds)
        qmat = rng.random((150, ds.n_items)) < 0.4
        batch = evaluator.classification_values_batch(qmat)
        for i in (0, 63, 64, 101, 149):
            np.testing.assert_allclose(
                batch[i], evaluator.classification_values(qmat[i]), atol=1e-5
            )

    def test_classifier_batch_engines_agree(self, example):
        fast = BSTClassifier(engine="fast").fit(example)
        ref = BSTClassifier(engine="reference").fit(example)
        queries = list(example.samples) + [Q, frozenset()]
        np.testing.assert_allclose(
            fast.classification_values_batch(queries),
            ref.classification_values_batch(queries),
            atol=1e-5,
        )
        assert (
            fast.predict_batch(queries).tolist()
            == ref.predict_batch(queries).tolist()
        )


class TestEvaluatorCache:
    def setup_method(self):
        clear_evaluator_cache()

    def teardown_method(self):
        clear_evaluator_cache()

    def test_hit_on_identical_content(self, example):
        first = get_evaluator(example, "min")
        # A structurally identical but distinct dataset object hits the cache.
        clone = RelationalDataset(
            item_names=example.item_names,
            class_names=example.class_names,
            samples=example.samples,
            labels=example.labels,
        )
        assert get_evaluator(clone, "min") is first

    def test_miss_on_different_arithmetization(self, example):
        assert get_evaluator(example, "min") is not get_evaluator(example, "mean")

    def test_counters_track_hits_and_misses(self, example):
        counters = engine_counters
        before_hits = counters.get("evaluator_cache_hits")
        before_misses = counters.get("evaluator_cache_misses")
        get_evaluator(example, "min")
        get_evaluator(example, "min")
        assert counters.get("evaluator_cache_misses") == before_misses + 1
        assert counters.get("evaluator_cache_hits") == before_hits + 1

    def test_clear(self, example):
        first = get_evaluator(example, "min")
        clear_evaluator_cache()
        assert evaluator_cache_info()[0] == 0
        assert get_evaluator(example, "min") is not first

    def test_lru_eviction(self):
        rng = np.random.default_rng(5)
        _, capacity = evaluator_cache_info()
        oldest = random_relational(rng)
        first = get_evaluator(oldest, "min")
        for _ in range(capacity):
            get_evaluator(random_relational(rng), "min")
        entries, _ = evaluator_cache_info()
        assert entries == capacity
        # The oldest entry was evicted: fetching it again rebuilds.
        assert get_evaluator(oldest, "min") is not first

    def test_invalid_arithmetization_rejected_before_hashing(self, example):
        with pytest.raises(ValueError):
            get_evaluator(example, "median")

    def test_set_cache_size_shrinks_and_counts_evictions(self):
        rng = np.random.default_rng(7)
        default_capacity = evaluator_cache_info()[1]
        try:
            before = engine_counters.get("evaluator_cache_evictions")
            for _ in range(4):
                get_evaluator(random_relational(rng), "min")
            set_evaluator_cache_size(2)
            entries, capacity = evaluator_cache_info()
            assert (entries, capacity) == (2, 2)
            assert engine_counters.get("evaluator_cache_evictions") == before + 2
        finally:
            set_evaluator_cache_size(default_capacity)

    def test_set_cache_size_rejects_non_positive(self):
        with pytest.raises(ValueError):
            set_evaluator_cache_size(0)

    def test_concurrent_lookups_share_one_entry(self, example):
        import threading

        results = [None] * 8
        barrier = threading.Barrier(len(results))

        def fetch(slot):
            barrier.wait()
            results[slot] = get_evaluator(example, "min")

        threads = [
            threading.Thread(target=fetch, args=(i,)) for i in range(len(results))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # All threads resolved to one cached instance and one cache entry.
        assert len({id(r) for r in results}) == 1
        assert evaluator_cache_info()[0] == 1

    def test_fitted_classifiers_share_cached_evaluator(self, example):
        a = BSTClassifier().fit(example)
        b = BSTClassifier().fit(example)
        assert a._fast is b._fast


class TestEngineCounters:
    def test_merge_sums_counts_and_keeps_max(self):
        counters = EngineCounters()
        counters.increment("query_calls", 2)
        counters.observe_max("max_batch_size", 16)
        counters.merge({"query_calls": 3, "max_batch_size": 8, "batch_seconds": 0.5})
        assert counters.get("query_calls") == 5
        assert counters.get("max_batch_size") == 16
        assert counters.get("batch_seconds") == pytest.approx(0.5)

    def test_report_renders_all_entries(self):
        counters = EngineCounters()
        counters.increment("batch_calls")
        counters.add_seconds("batch", 1.25)
        text = counters.report(title="t")
        assert "[t]" in text and "batch_calls" in text and "1.250" in text

    def test_track_records_wall_time(self):
        counters = EngineCounters()
        with counters.track("phase"):
            pass
        assert counters.get("phase_seconds") >= 0.0


class TestParallelCrossValidation:
    def test_resolve_n_jobs(self):
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(4, n_tasks=2) == 2
        assert resolve_n_jobs(0) == 1
        assert resolve_n_jobs(-1) >= 1

    def test_make_tests_parallel_identical(self, tiny_profile):
        from repro.datasets.synthetic import generate_expression_data

        data = generate_expression_data(tiny_profile, seed=1)
        size = TrainingSize("60%", fraction=0.6)
        serial = make_tests(data, size, 3, tiny_profile.name, n_jobs=1)
        parallel = make_tests(data, size, 3, tiny_profile.name, n_jobs=2)
        assert len(serial) == len(parallel) == 3
        for s, p in zip(serial, parallel):
            assert s.index == p.index
            np.testing.assert_array_equal(
                s.rel_train.bool_matrix, p.rel_train.bool_matrix
            )
            assert s.rel_train.labels == p.rel_train.labels
            assert s.test_queries == p.test_queries
            assert s.test_labels == p.test_labels

    def test_run_tests_parallel_bit_identical(self, tiny_profile):
        from repro.datasets.synthetic import generate_expression_data

        data = generate_expression_data(tiny_profile, seed=1)
        size = TrainingSize("60%", fraction=0.6)
        tests = make_tests(data, size, 3, tiny_profile.name)
        runner = BSTCRunner()
        serial = run_tests(runner, tests, n_jobs=1)
        parallel = run_tests(runner, tests, n_jobs=2)
        assert len(serial) == len(parallel) == 3
        for s, p in zip(serial, parallel):
            # Everything but wall-clock timing must be bit-identical.
            assert s.classifier == p.classifier
            assert s.size_label == p.size_label
            assert s.test_index == p.test_index
            assert s.accuracy == p.accuracy
            assert s.dnf == p.dnf
            assert s.notes == p.notes

    def test_parallel_merges_worker_counters(self, tiny_profile):
        from repro.datasets.synthetic import generate_expression_data

        data = generate_expression_data(tiny_profile, seed=1)
        size = TrainingSize("60%", fraction=0.6)
        tests = make_tests(data, size, 2, tiny_profile.name)
        before = engine_counters.get("batch_calls")
        run_tests(BSTCRunner(), tests, n_jobs=2)
        assert engine_counters.get("batch_calls") > before


class TestExplainProtocol:
    """``explain`` is a uniform Estimator method: BSTC explains, every
    other model refuses with the typed NotSupportedError (never an
    AttributeError)."""

    def test_bstc_explains(self, example):
        from repro.core.explain import Explanation

        clf = BSTClassifier().fit(example)
        explanation = clf.explain(Q)
        assert isinstance(explanation, Explanation)
        assert explanation.predicted == clf.predict(Q)

    def test_deprecated_aliases_removed(self, example):
        for clf in (
            BSTClassifier().fit(example),
            MCBARClassifier(k=2).fit(example),
            CBAClassifier(min_support=0.2, min_confidence=0.6).fit(example),
        ):
            assert not hasattr(clf, "predict_many")
            assert not hasattr(clf, "predict_dataset")

    def test_mcbar_refuses_typed(self, example):
        from repro.errors import NotSupportedError

        clf = MCBARClassifier(k=2).fit(example)
        with pytest.raises(NotSupportedError, match="explain"):
            clf.explain(Q)

    def test_cba_refuses_typed(self, example):
        from repro.errors import NotSupportedError

        clf = CBAClassifier(min_support=0.2, min_confidence=0.6).fit(example)
        with pytest.raises(NotSupportedError, match="explain"):
            clf.explain(Q)

    def test_not_supported_is_not_implemented(self):
        # Typed refusals still satisfy except NotImplementedError handlers.
        from repro.errors import NotSupportedError, ReproError

        assert issubclass(NotSupportedError, NotImplementedError)
        assert issubclass(NotSupportedError, ReproError)


class TestCLIFlags:
    def test_flags_reach_config(self):
        from repro.cli import _build_parser, _config_from_args

        args = _build_parser().parse_args(
            [
                "run",
                "table3",
                "--engine",
                "reference",
                "--arithmetization",
                "mean",
                "--jobs",
                "2",
            ]
        )
        config = _config_from_args(args)
        assert config.engine == "reference"
        assert config.arithmetization == "mean"
        assert config.n_jobs == 2

    def test_defaults(self):
        from repro.cli import _build_parser, _config_from_args

        args = _build_parser().parse_args(["run", "table3"])
        config = _config_from_args(args)
        assert config.engine == "fast"
        assert config.arithmetization == "min"
        assert config.n_jobs == 1

    def test_invalid_engine_rejected_by_parser(self, capsys):
        from repro.cli import _build_parser

        with pytest.raises(SystemExit):
            _build_parser().parse_args(["run", "table3", "--engine", "gpu"])
        assert "--engine" in capsys.readouterr().err
