"""Smoke tests: the example scripts run and print their key results."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "classified as Cancer" in out
        assert "0.75" in out

    def test_multiclass_subtypes(self):
        out = run_example("multiclass_subtypes.py")
        assert "Overall accuracy" in out
        assert "Confusion matrix" in out

    def test_raw_intensity_pipeline(self):
        out = run_example("raw_intensity_pipeline.py")
        assert "BSTC accuracy" in out

    def test_rule_mining_explanations(self):
        out = run_example("rule_mining_explanations.py")
        assert "Theorem-2 predicted" in out
        assert "supporting atomic cell rules" in out

    @pytest.mark.slow
    def test_tumor_classification(self):
        out = run_example("tumor_classification.py", timeout=300.0)
        assert "BSTC: accuracy" in out

    @pytest.mark.slow
    def test_scalability_study(self):
        out = run_example("scalability_study.py", timeout=400.0)
        assert "BSTC's polynomial cost" in out
