"""Recovery matrix for the fault-tolerant experiment runtime.

Every promised recovery path is exercised with deterministic fault
injection (:mod:`repro.testing.faults`): crash → retry → success, crash
exhausting retries → DNF, hang → timeout → DNF, corrupt payload →
validation → retry, kill-and-resume via the checkpoint journal, corrupted
journal lines, and resource-budget exhaustion inside the miners.
"""

from __future__ import annotations

import math

import pytest

from repro.datasets.profiles import DatasetProfile
from repro.datasets.synthetic import generate_expression_data
from repro.errors import (
    CandidateBudgetExceeded,
    JournalError,
    RuleBudgetExceeded,
    TaskTimeout,
    WorkerCrashed,
)
from repro.evaluation.crossval import TrainingSize, make_test
from repro.evaluation.journal import (
    ResultJournal,
    result_from_dict,
    result_key,
    result_to_dict,
)
from repro.evaluation.resilience import (
    RetryPolicy,
    multiprocessing_available,
    supervised_map,
)
from repro.evaluation.runners import BSTCRunner, TopkRCBTRunner, run_tests
from repro.evaluation.timing import Budget, engine_counters
from repro.testing.faults import CORRUPT_PAYLOAD, FaultPlan, FaultSpec

pytestmark = pytest.mark.faults

needs_mp = pytest.mark.skipif(
    not multiprocessing_available(), reason="multiprocessing unavailable"
)

#: Fast-failing policy for tests: no backoff sleeps.
FAST = RetryPolicy(retries=2, backoff=0.0)


def _square(x):
    return x * x


def _tag_parallel(x):
    return "parallel"


def _tag_serial(x):
    return "serial"


def _dnf_fallback(index, payload, failure, attempts, error):
    return ("DNF", failure, attempts, error)


@pytest.fixture(scope="module")
def cv_tests():
    profile = DatasetProfile(
        name="TINY",
        long_name="Tiny synthetic",
        n_genes=60,
        class_labels=("pos", "neg"),
        class_counts=(14, 12),
        given_training=(9, 8),
        informative_fraction=0.2,
        effect_size=2.2,
    )
    data = generate_expression_data(profile, seed=1)
    size = TrainingSize("60%", fraction=0.6)
    return [make_test(data, size, i, "TINY") for i in range(4)]


def _comparable(result):
    """Everything about a TestResult except wall-clock phase timings."""
    return (
        result.classifier,
        result.size_label,
        result.test_index,
        result.accuracy,
        result.notes,
        tuple((p.name, p.finished) for p in result.phases),
    )


# ----------------------------------------------------------------------
# supervised_map: the serial state machine
# ----------------------------------------------------------------------


class TestSupervisedSerial:
    def test_plain_map_preserves_order(self):
        outcomes = supervised_map(_square, [1, 2, 3], policy=FAST)
        assert [o.value for o in outcomes] == [1, 4, 9]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_empty_payloads(self):
        assert supervised_map(_square, [], policy=FAST) == []

    def test_crash_then_retry_then_success(self):
        plan = FaultPlan([FaultSpec(1, "error", attempts=1)])
        engine_counters.reset()
        outcomes = supervised_map(
            _square, [1, 2, 3], policy=FAST, fault_plan=plan
        )
        assert [o.value for o in outcomes] == [1, 4, 9]
        assert outcomes[1].ok and outcomes[1].attempts == 2
        assert engine_counters.get("resilience_crashed") == 1
        assert engine_counters.get("resilience_retries") == 1
        assert engine_counters.get("resilience_degraded") == 0

    def test_crash_exhausting_retries_degrades(self):
        plan = FaultPlan([FaultSpec(0, "error", attempts=10)])
        engine_counters.reset()
        outcomes = supervised_map(
            _square, [5], policy=FAST, fault_plan=plan, fallback=_dnf_fallback
        )
        (outcome,) = outcomes
        assert not outcome.ok
        assert outcome.failure == "crashed"
        assert outcome.attempts == 3  # 1 + 2 retries
        assert outcome.value[0] == "DNF"
        assert "injected error" in outcome.error
        assert engine_counters.get("resilience_degraded") == 1

    def test_hang_is_not_retried(self):
        plan = FaultPlan([FaultSpec(0, "hang")])
        outcomes = supervised_map(
            _square, [5], policy=FAST, fault_plan=plan, fallback=_dnf_fallback
        )
        (outcome,) = outcomes
        assert outcome.failure == "timeout"
        assert outcome.attempts == 1  # timeouts are terminal by default

    def test_hang_retried_when_opted_in(self):
        plan = FaultPlan([FaultSpec(0, "hang", attempts=1)])
        policy = RetryPolicy(retries=2, backoff=0.0, retry_timeouts=True)
        outcomes = supervised_map(_square, [5], policy=policy, fault_plan=plan)
        assert outcomes[0].ok and outcomes[0].attempts == 2

    def test_corrupt_payload_caught_by_validation(self):
        plan = FaultPlan([FaultSpec(0, "corrupt", attempts=1)])
        engine_counters.reset()
        outcomes = supervised_map(
            _square,
            [5],
            policy=FAST,
            fault_plan=plan,
            validate=lambda v: v != CORRUPT_PAYLOAD,
        )
        assert outcomes[0].ok and outcomes[0].value == 25
        assert outcomes[0].attempts == 2
        assert engine_counters.get("resilience_corrupt") == 1

    def test_no_fallback_raises_typed_error(self):
        plan = FaultPlan([FaultSpec(0, "error", attempts=10)])
        with pytest.raises(WorkerCrashed):
            supervised_map(_square, [5], policy=FAST, fault_plan=plan)
        plan = FaultPlan([FaultSpec(0, "hang")])
        with pytest.raises(TaskTimeout):
            supervised_map(_square, [5], policy=FAST, fault_plan=plan)

    def test_force_serial_env_overrides_parallel(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_SERIAL", "1")
        assert not multiprocessing_available()
        outcomes = supervised_map(
            _tag_parallel,
            [0, 1, 2],
            n_jobs=3,
            policy=FAST,
            serial_worker=_tag_serial,
        )
        assert [o.value for o in outcomes] == ["serial"] * 3

    def test_backoff_is_deterministic(self):
        policy = RetryPolicy(retries=3, backoff=0.1)
        assert [policy.delay(a) for a in (1, 2, 3)] == [0.1, 0.2, 0.4]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(task_timeout=0.0)


# ----------------------------------------------------------------------
# supervised_map: the real process pool
# ----------------------------------------------------------------------


@needs_mp
class TestSupervisedParallel:
    def test_crash_retry_success(self):
        plan = FaultPlan([FaultSpec(0, "crash", attempts=1)])
        outcomes = supervised_map(
            _square, [3, 4], n_jobs=2, policy=FAST, fault_plan=plan
        )
        assert [o.value for o in outcomes] == [9, 16]
        assert outcomes[0].attempts == 2

    def test_one_crasher_one_hanger_rest_finish(self):
        """The acceptance scenario: a crashing worker and a hanging task
        degrade to DNF stand-ins; every other task completes normally."""
        plan = FaultPlan(
            [
                FaultSpec(1, "crash", attempts=10),
                FaultSpec(2, "hang", hang_seconds=60.0),
            ]
        )
        policy = RetryPolicy(retries=1, backoff=0.0, task_timeout=5.0)
        outcomes = supervised_map(
            _square,
            [1, 2, 3, 4],
            n_jobs=4,
            policy=policy,
            fault_plan=plan,
            fallback=_dnf_fallback,
        )
        assert outcomes[0].ok and outcomes[0].value == 1
        assert outcomes[3].ok and outcomes[3].value == 16
        assert outcomes[1].failure == "crashed"
        assert "exit code 23" in outcomes[1].error
        assert outcomes[2].failure == "timeout"
        assert "killed after" in outcomes[2].error


# ----------------------------------------------------------------------
# run_tests: degradation, journaling, resume
# ----------------------------------------------------------------------


class TestRunTestsRecovery:
    def test_degraded_fold_is_dnf_record(self, cv_tests):
        runner = BSTCRunner()
        plan = FaultPlan([FaultSpec(1, "error", attempts=10)])
        policy = RetryPolicy(retries=1, backoff=0.0)
        results = run_tests(runner, cv_tests, policy=policy, fault_plan=plan)
        baseline = run_tests(runner, cv_tests)
        assert len(results) == len(cv_tests)
        degraded = results[1]
        assert degraded.dnf and degraded.accuracy is None
        assert degraded.classifier == "BSTC"
        assert degraded.test_index == cv_tests[1].index
        assert "degraded to DNF: worker crashed after 2 attempt(s)" in degraded.notes
        assert degraded.phases[0].name == "bstc"
        for pos in (0, 2, 3):
            assert _comparable(results[pos]) == _comparable(baseline[pos])

    def test_journal_then_resume_bit_identical(self, cv_tests, tmp_path):
        """A study killed halfway and resumed matches an uninterrupted run."""
        runner = BSTCRunner()
        baseline = run_tests(runner, cv_tests)

        journal = ResultJournal(tmp_path / "study.jsonl")
        # "Kill at 50%": only the first half of the tests ever ran.
        run_tests(runner, cv_tests[:2], journal=journal)
        assert len(journal.load_results()) == 2

        engine_counters.reset()
        resumed = run_tests(runner, cv_tests, journal=journal, resume=True)
        assert engine_counters.get("journal_skips") == 2
        assert engine_counters.get("journal_appends") == 2
        assert [_comparable(r) for r in resumed] == [
            _comparable(r) for r in baseline
        ]
        # Replayed entries carry their recorded timings verbatim.
        stored = journal.load_results()
        for replayed in resumed[:2]:
            recorded = stored[result_key(replayed)]
            assert replayed.phases == recorded.phases

    def test_degraded_results_never_journaled(self, cv_tests, tmp_path):
        runner = BSTCRunner()
        journal = ResultJournal(tmp_path / "study.jsonl")
        plan = FaultPlan([FaultSpec(0, "error", attempts=10)])
        policy = RetryPolicy(retries=0, backoff=0.0)
        results = run_tests(
            runner,
            cv_tests[:2],
            policy=policy,
            journal=journal,
            fault_plan=plan,
        )
        assert results[0].dnf
        stored = journal.load_results()
        assert result_key(results[0]) not in stored
        assert result_key(results[1]) in stored
        # A resume without the fault re-runs the degraded fold for real.
        resumed = run_tests(runner, cv_tests[:2], journal=journal, resume=True)
        assert resumed[0].accuracy is not None

    def test_resume_only_splices_matching_scope(self, cv_tests, tmp_path):
        """Records journaled under another scope (a different dataset or
        config) are never spliced in on resume."""
        runner = BSTCRunner()
        journal = ResultJournal(tmp_path / "study.jsonl")
        run_tests(runner, cv_tests[:2], journal=journal, journal_scope="ALL|a")

        engine_counters.reset()
        resumed = run_tests(
            runner,
            cv_tests[:2],
            journal=journal,
            resume=True,
            journal_scope="LC|a",
        )
        assert engine_counters.get("journal_skips") == 0
        assert all(r.accuracy is not None for r in resumed)
        # Both scopes now coexist in the one file, each under its own keys.
        stored = journal.load_results()
        for test in cv_tests[:2]:
            assert ("ALL|a", "BSTC", test.size.label, test.index) in stored
            assert ("LC|a", "BSTC", test.size.label, test.index) in stored
        # A same-scope resume splices everything back.
        engine_counters.reset()
        run_tests(
            runner,
            cv_tests[:2],
            journal=journal,
            resume=True,
            journal_scope="ALL|a",
        )
        assert engine_counters.get("journal_skips") == 2

    def test_lowered_nl_retry_not_defeated_by_resume(self, cv_tests, tmp_path):
        """The dagger retry's nl=2 folds journal under their own scope, so
        resume can never splice the nl=20 DNF records in their place."""
        from repro.experiments.base import ExperimentConfig

        config = ExperimentConfig(
            journal=str(tmp_path / "study.jsonl"), resume=True
        )
        journal = config.result_journal()
        # The nl=20 pass DNFs every fold (genuine budget DNFs, journaled).
        dnf = TopkRCBTRunner(nl=20, topk_cutoff=1e-9)
        scope_20 = config.journal_scope("TINY", nl=20)
        results = run_tests(
            dnf, cv_tests[:2], journal=journal, resume=True,
            journal_scope=scope_20,
        )
        assert all(r.dnf for r in results)
        # The retry resumes under the nl=2 scope: nothing matches, every
        # fold genuinely re-runs (journal_skips would count splices).
        lowered = TopkRCBTRunner(nl=2)
        scope_2 = config.journal_scope("TINY", nl=2)
        assert scope_2 != scope_20
        engine_counters.reset()
        retried = run_tests(
            lowered, cv_tests[:2], journal=journal, resume=True,
            journal_scope=scope_2,
        )
        assert engine_counters.get("journal_skips") == 0
        assert all(not r.dnf for r in retried)
        assert all(r.notes == "nl=2" for r in retried)

    def test_serial_timeout_with_infinite_policy_records_finite_seconds(
        self, cv_tests
    ):
        """An injected hang under the default task_timeout=inf must not
        leak seconds=inf into the degraded DNF record."""
        runner = BSTCRunner()
        plan = FaultPlan([FaultSpec(0, "hang")])
        results = run_tests(runner, cv_tests[:1], fault_plan=plan)
        (degraded,) = results
        assert degraded.dnf
        assert math.isfinite(degraded.phases[0].seconds)
        assert degraded.phases[0].seconds == 0.0
        assert "infs" not in degraded.notes

    def test_resume_with_corrupted_journal_fails_loudly(self, cv_tests, tmp_path):
        runner = BSTCRunner()
        journal = ResultJournal(tmp_path / "study.jsonl")
        run_tests(runner, cv_tests[:1], journal=journal)
        with journal.path.open("a", encoding="utf-8") as handle:
            handle.write('{"classifier": "BSTC", "trunc\n')
        with pytest.raises(JournalError, match=r"study\.jsonl:2: corrupted"):
            run_tests(runner, cv_tests, journal=journal, resume=True)

    @needs_mp
    def test_parallel_study_with_faults_matches_serial(self, cv_tests):
        """Parallel + crash-retry recovery reproduces the serial results."""
        runner = BSTCRunner()
        baseline = run_tests(runner, cv_tests)
        plan = FaultPlan([FaultSpec(2, "crash", attempts=1)])
        results = run_tests(
            runner, cv_tests, n_jobs=2, policy=FAST, fault_plan=plan
        )
        assert [_comparable(r) for r in results] == [
            _comparable(r) for r in baseline
        ]

    @needs_mp
    def test_counters_merge_once_despite_retry(self, cv_tests):
        """A retried fold's engine counters are merged exactly once."""
        from repro.core.fast import clear_evaluator_cache

        def deterministic(snapshot):
            return {
                name: value
                for name, value in snapshot.items()
                if not name.startswith("resilience_")
                and not name.endswith("_seconds")
            }

        runner = BSTCRunner()
        clear_evaluator_cache()
        engine_counters.reset()
        run_tests(runner, cv_tests[:2], n_jobs=2, policy=FAST)
        clean = deterministic(engine_counters.snapshot())

        plan = FaultPlan([FaultSpec(0, "crash", attempts=1)])
        clear_evaluator_cache()
        engine_counters.reset()
        run_tests(runner, cv_tests[:2], n_jobs=2, policy=FAST, fault_plan=plan)
        retried = deterministic(engine_counters.snapshot())
        assert retried == clean


# ----------------------------------------------------------------------
# Resource budgets
# ----------------------------------------------------------------------


class TestResourceBudgets:
    def test_rule_group_cap(self):
        budget = Budget(max_rule_groups=2)
        budget.charge_rules()
        budget.charge_rules()
        with pytest.raises(RuleBudgetExceeded) as exc_info:
            budget.charge_rules()
        assert exc_info.value.reason == "rule_groups"

    def test_candidate_cap(self):
        budget = Budget(max_candidates=4)
        budget.observe_candidates(4)
        with pytest.raises(CandidateBudgetExceeded) as exc_info:
            budget.observe_candidates(5)
        assert exc_info.value.reason == "candidates"

    def test_restart_resets_rule_charges(self):
        budget = Budget(max_rule_groups=1)
        budget.charge_rules()
        budget.restart()
        budget.charge_rules()  # does not raise

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            Budget(max_rule_groups=0)
        with pytest.raises(ValueError):
            Budget(max_candidates=0)

    def test_topk_rule_budget_exhaustion_is_dnf(self, cv_tests):
        runner = TopkRCBTRunner(
            k=3, min_support=0.6, nl=3, max_rule_groups=1
        )
        result = runner.run(cv_tests[0])
        assert result.dnf and result.accuracy is None
        assert result.notes == "topk DNF (rule_groups)"
        # Resource DNFs record elapsed time, not the wall-clock cutoff.
        assert result.phases[0].seconds < 1.0

    def test_topk_candidate_budget_exhaustion_is_dnf(self, cv_tests):
        runner = TopkRCBTRunner(
            k=3, min_support=0.6, nl=3, max_candidates=2
        )
        result = runner.run(cv_tests[0])
        assert result.dnf
        assert result.notes == "topk DNF (candidates)"


# ----------------------------------------------------------------------
# Journal format
# ----------------------------------------------------------------------


class TestJournalFormat:
    def test_roundtrip(self, cv_tests):
        result = BSTCRunner().run(cv_tests[0])
        assert result_from_dict(result_to_dict(result)) == result

    def test_missing_file_is_empty(self, tmp_path):
        assert ResultJournal(tmp_path / "nope.jsonl").load_results() == {}

    def test_last_write_wins_on_duplicate_keys(self, cv_tests, tmp_path):
        journal = ResultJournal(tmp_path / "study.jsonl")
        first = BSTCRunner().run(cv_tests[0])
        rerun = BSTCRunner(cutoff=1e-9).run(cv_tests[0])  # same key, DNF
        journal.append(first)
        journal.append(rerun)
        stored = journal.load_results()
        assert stored[result_key(first)] == rerun

    def test_corrupt_line_names_file_and_line(self, tmp_path):
        journal = ResultJournal(tmp_path / "study.jsonl")
        journal.path.write_text('not json\n', encoding="utf-8")
        with pytest.raises(JournalError, match=r"study\.jsonl:1"):
            journal.load_results()
