"""Random forest tests."""

import numpy as np
import pytest

from repro.baselines.forest import RandomForestClassifier


def blobs(rng, n_per, centers, spread=0.5):
    X, y = [], []
    for label, center in enumerate(centers):
        X.append(rng.normal(0, spread, size=(n_per, len(center))) + np.asarray(center))
        y.extend([label] * n_per)
    return np.vstack(X), np.asarray(y)


class TestRandomForest:
    def test_separable_data(self):
        rng = np.random.default_rng(0)
        X, y = blobs(rng, 25, [(-2, -2), (2, 2)])
        forest = RandomForestClassifier(n_estimators=20, seed=0).fit(X, y)
        assert (forest.predict(X) == y).mean() >= 0.95

    def test_generalizes(self):
        rng = np.random.default_rng(1)
        X, y = blobs(rng, 30, [(-2, 0), (2, 0)])
        X_test, y_test = blobs(rng, 12, [(-2, 0), (2, 0)])
        forest = RandomForestClassifier(n_estimators=25, seed=1).fit(X, y)
        assert (forest.predict(X_test) == y_test).mean() >= 0.9

    def test_three_classes(self):
        rng = np.random.default_rng(2)
        X, y = blobs(rng, 20, [(-3, 0), (3, 0), (0, 4)])
        forest = RandomForestClassifier(n_estimators=25, seed=2).fit(X, y)
        assert (forest.predict(X) == y).mean() >= 0.9

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(3)
        X, y = blobs(rng, 15, [(-2, -2), (2, 2)])
        a = RandomForestClassifier(n_estimators=10, seed=7).fit(X, y).predict(X)
        b = RandomForestClassifier(n_estimators=10, seed=7).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    def test_invalid_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict(np.zeros((1, 2)))
