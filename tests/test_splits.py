"""Train/test split protocol tests."""

import numpy as np
import pytest

from repro.datasets.splits import count_split, fraction_split, given_training_split


LABELS = [0] * 10 + [1] * 6


class TestFractionSplit:
    def test_sizes(self):
        split = fraction_split(LABELS, 0.4, seed=0)
        assert split.n_train == round(0.4 * len(LABELS))
        assert split.n_train + split.n_test == len(LABELS)

    def test_disjoint_and_complete(self):
        split = fraction_split(LABELS, 0.6, seed=1)
        train, test = set(split.train_indices), set(split.test_indices)
        assert not train & test
        assert train | test == set(range(len(LABELS)))

    def test_deterministic(self):
        assert fraction_split(LABELS, 0.5, seed=3) == fraction_split(
            LABELS, 0.5, seed=3
        )

    def test_seed_varies(self):
        splits = {fraction_split(LABELS, 0.5, seed=s).train_indices for s in range(8)}
        assert len(splits) > 1

    def test_every_class_in_training(self):
        for seed in range(25):
            split = fraction_split(LABELS, 0.2, seed=seed)
            labels = {LABELS[i] for i in split.train_indices}
            assert labels == {0, 1}

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            fraction_split(LABELS, 1.0, seed=0)

    def test_too_few_for_classes(self):
        with pytest.raises(ValueError):
            fraction_split([0, 1, 2, 3], 0.25, seed=0)  # 1 sample, 4 classes


class TestCountSplit:
    def test_paper_protocol(self):
        split = count_split(LABELS, (7, 4), seed=0)
        train_labels = [LABELS[i] for i in split.train_indices]
        assert train_labels.count(0) == 7
        assert train_labels.count(1) == 4
        assert split.n_test == len(LABELS) - 11

    def test_overdraw_raises(self):
        with pytest.raises(ValueError):
            count_split(LABELS, (11, 1), seed=0)

    def test_no_test_left_raises(self):
        with pytest.raises(ValueError):
            count_split(LABELS, (10, 6), seed=0)

    def test_given_training_split_deterministic(self):
        a = given_training_split(LABELS, (5, 3))
        b = given_training_split(LABELS, (5, 3))
        assert a == b
