"""Gene-row BAR tests (Algorithm 2, Figure 2) and StructuredBAR semantics."""

import numpy as np
import pytest

from repro.bst.row_bar import (
    StructuredBAR,
    all_gene_row_bars,
    gene_row_bar,
    is_maximally_complex,
)
from repro.bst.table import BST

from conftest import random_relational


@pytest.fixture
def cancer_bst(example):
    return BST.build(example, 0)


def gene(example, name):
    return example.item_names.index(name)


class TestFigure2:
    def test_all_rows_are_100_percent_confident(self, example, cancer_bst):
        """Figure 2's defining property: every gene-row BAR has confidence 1."""
        for rule in all_gene_row_bars(cancer_bst):
            bar = rule.to_bar(cancer_bst)
            assert bar.confidence(example) == 1.0

    def test_row_supports_match_expression(self, example, cancer_bst):
        expected = {
            "g1": {"s1", "s2"},
            "g2": {"s1", "s3"},
            "g3": {"s1", "s2"},
            "g4": {"s3"},
            "g5": {"s1"},
            "g6": {"s2", "s3"},
        }
        for rule in all_gene_row_bars(cancer_bst):
            name = example.item_names[next(iter(rule.car_items))]
            supp = {example.sample_name(s) for s in rule.support}
            assert supp == expected[name]

    def test_empirical_support_matches_declared(self, example, cancer_bst):
        """The BAR expression evaluates true on exactly the declared class
        support samples."""
        for rule in all_gene_row_bars(cancer_bst):
            bar = rule.to_bar(cancer_bst)
            assert bar.support_set(example) == rule.support

    def test_g1_row_is_plain_gene(self, example, cancer_bst):
        """Figure 2: gene g1's rule is just 'g1 expressed' (black dots)."""
        rule = gene_row_bar(cancer_bst, gene(example, "g1"))
        expr = rule.expr(cancer_bst)
        assert expr.atoms() == {gene(example, "g1")}

    def test_g2_and_g6_maximally_complex(self, example, cancer_bst):
        """Section 4.1: exactly the g2 and g6 row rules are maximally
        complex in the running example."""
        maximal = {
            example.item_names[next(iter(rule.car_items))]
            for rule in all_gene_row_bars(cancer_bst)
            if is_maximally_complex(cancer_bst, rule)
        }
        assert maximal == {"g2", "g6"}

    def test_blank_row_raises(self, example):
        healthy = BST.build(example, 1)
        with pytest.raises(ValueError):
            gene_row_bar(healthy, gene(example, "g1"))


class TestAnding:
    def test_and_unions_items_and_intersects_support(self, example, cancer_bst):
        g1 = gene_row_bar(cancer_bst, gene(example, "g1"))
        g6 = gene_row_bar(cancer_bst, gene(example, "g6"))
        combined = g1.and_with(g6)
        assert combined.car_items == g1.car_items | g6.car_items
        assert combined.support == {1}  # only s2 expresses both

    def test_section_321_example(self, example, cancer_bst):
        """Section 3.2.1: (g1 AND g6) => Cancer is 100% confident with
        support {s2}, and s5's exclusion clause is unnecessary because g1
        already excludes s5 (the black-dot simplification)."""
        g1 = gene_row_bar(cancer_bst, gene(example, "g1"))
        g6 = gene_row_bar(cancer_bst, gene(example, "g6"))
        combined = g1.and_with(g6)
        bar = combined.to_bar(cancer_bst)
        assert bar.confidence(example) == 1.0
        assert bar.support_set(example) == {1}
        # No outside sample expresses both g1 and g6, so no clauses at all.
        assert combined.excluded_outside(cancer_bst) == ()

    def test_and_different_consequents_raises(self, example):
        a = StructuredBAR(frozenset({0}), 0, frozenset({0}))
        b = StructuredBAR(frozenset({1}), 1, frozenset({3}))
        with pytest.raises(ValueError):
            a.and_with(b)

    def test_anded_rules_stay_100_percent_confident(self):
        """Property: ANDing gene-row BARs preserves 100% confidence whenever
        the intersected support is non-empty and no cross-class duplicate
        rows exist."""
        rng = np.random.default_rng(21)
        checked = 0
        while checked < 12:
            ds = random_relational(rng)
            if _has_duplicates(ds):
                continue
            bst = BST.build(ds, 0)
            rows = [gene_row_bar(bst, g) for g in sorted(bst.nonblank_genes())]
            for i in range(len(rows)):
                for j in range(i + 1, min(i + 3, len(rows))):
                    combined = rows[i].and_with(rows[j])
                    if not combined.support:
                        continue
                    bar = combined.to_bar(bst)
                    assert bar.confidence(ds) == 1.0
                    assert bar.support_set(ds) == combined.support
            checked += 1


class TestComplexity:
    def test_complexity_counts_car_genes(self):
        rule = StructuredBAR(frozenset({1, 2, 5}), 0, frozenset({0}))
        assert rule.complexity == 3

    def test_describe_mentions_items(self, example, cancer_bst):
        rule = gene_row_bar(cancer_bst, gene(example, "g3"))
        assert "g3" in rule.describe(cancer_bst)


def _has_duplicates(ds):
    seen = {}
    for i, s in enumerate(ds.samples):
        if s in seen and ds.labels[seen[s]] != ds.labels[i]:
            return True
        seen[s] = i
    return False
