"""Classifier runner tests: timing, DNF and accuracy bookkeeping."""

import pytest

from repro.datasets.synthetic import generate_expression_data
from repro.evaluation.crossval import TrainingSize, make_test
from repro.evaluation.runners import (
    BSTCRunner,
    CBARunner,
    RandomForestRunner,
    SVMRunner,
    TopkRCBTRunner,
    TreeFamilyRunner,
)


@pytest.fixture(scope="module")
def cv_test(tiny_profile_module):
    data = generate_expression_data(tiny_profile_module, seed=1)
    return make_test(data, TrainingSize("60%", fraction=0.6), 0, "TINY")


@pytest.fixture(scope="module")
def tiny_profile_module():
    from repro.datasets.profiles import DatasetProfile

    return DatasetProfile(
        name="TINY",
        long_name="Tiny synthetic",
        n_genes=60,
        class_labels=("pos", "neg"),
        class_counts=(14, 12),
        given_training=(9, 8),
        informative_fraction=0.2,
        effect_size=2.2,
    )


class TestBSTCRunner:
    def test_finishes_with_accuracy(self, cv_test):
        result = BSTCRunner().run(cv_test)
        assert result.classifier == "BSTC"
        assert result.accuracy is not None and 0.0 <= result.accuracy <= 1.0
        assert not result.dnf
        assert result.phase_seconds("bstc") > 0

    def test_dnf_on_tiny_cutoff(self, cv_test):
        result = BSTCRunner(cutoff=1e-9).run(cv_test)
        assert result.dnf
        assert result.accuracy is None
        assert result.phase_seconds("bstc") == 1e-9


class TestTopkRCBTRunner:
    def test_both_phases_recorded(self, cv_test):
        result = TopkRCBTRunner(k=3, min_support=0.6, nl=3).run(cv_test)
        assert result.phase_finished("topk") is True
        assert result.phase_finished("rcbt") is True
        assert result.accuracy is not None

    def test_topk_dnf_skips_rcbt(self, cv_test):
        result = TopkRCBTRunner(topk_cutoff=1e-9).run(cv_test)
        assert result.phase_finished("topk") is False
        assert result.phase_finished("rcbt") is None
        assert result.notes == "topk DNF"

    def test_rcbt_dnf_recorded(self, cv_test):
        result = TopkRCBTRunner(
            k=3, min_support=0.6, nl=3, rcbt_cutoff=1e-9
        ).run(cv_test)
        assert result.phase_finished("topk") is True
        assert result.phase_finished("rcbt") is False
        assert "rcbt DNF" in result.notes


class TestContinuousRunners:
    def test_svm(self, cv_test):
        result = SVMRunner().run(cv_test)
        assert result.accuracy is not None and result.accuracy >= 0.5

    def test_random_forest(self, cv_test):
        result = RandomForestRunner(n_estimators=15).run(cv_test)
        assert result.accuracy is not None and result.accuracy >= 0.5

    def test_tree_family(self, cv_test):
        for variant in ("tree", "bagging", "boosting"):
            result = TreeFamilyRunner(variant=variant).run(cv_test)
            assert result.accuracy is not None

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            TreeFamilyRunner(variant="stumps")


class TestCBARunner:
    def test_runs(self, cv_test):
        result = CBARunner(min_support=0.3, max_rule_len=2).run(cv_test)
        assert result.accuracy is not None

    def test_dnf(self, cv_test):
        result = CBARunner(cutoff=1e-9).run(cv_test)
        assert result.dnf
