"""Apriori miner tests — against brute-force frequent itemsets."""

from itertools import combinations

import numpy as np
import pytest

from repro.baselines.apriori import apriori_frequent_itemsets, class_association_rules
from repro.evaluation.timing import Budget, BudgetExceeded

from conftest import random_relational


def brute_force_frequent(transactions, min_count, max_len=None):
    items = sorted({i for t in transactions for i in t})
    out = {}
    top = max_len if max_len is not None else len(items)
    for r in range(1, top + 1):
        for combo in combinations(items, r):
            count = sum(1 for t in transactions if set(combo) <= t)
            if count >= min_count:
                out[frozenset(combo)] = count
    return out


class TestApriori:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(91)
        for _ in range(10):
            n = int(rng.integers(4, 10))
            m = int(rng.integers(3, 8))
            transactions = [
                frozenset(int(j) for j in np.flatnonzero(rng.random(m) < 0.5))
                for _ in range(n)
            ]
            for min_count in (1, 2, 3):
                expected = brute_force_frequent(transactions, min_count)
                got = apriori_frequent_itemsets(transactions, min_count)
                assert got == expected

    def test_max_len_cap(self):
        transactions = [frozenset({0, 1, 2})] * 4
        got = apriori_frequent_itemsets(transactions, 2, max_len=2)
        assert max(len(s) for s in got) == 2

    def test_min_count_validation(self):
        with pytest.raises(ValueError):
            apriori_frequent_itemsets([frozenset({0})], 0)

    def test_budget(self):
        transactions = [frozenset(range(12)) for _ in range(6)]
        with pytest.raises(BudgetExceeded):
            apriori_frequent_itemsets(transactions, 1, budget=Budget(1e-9))

    def test_empty_transactions(self):
        assert apriori_frequent_itemsets([frozenset()], 1) == {}


class TestClassAssociationRules:
    def test_rules_meet_cutoffs(self, example):
        rules = class_association_rules(example, 0.3, 0.6, max_len=2)
        n = example.n_samples
        for car, count, conf in rules:
            assert count >= int(0.3 * n + 0.999999)
            assert conf >= 0.6
            # Empirical confidence agrees.
            assert conf == pytest.approx(car.confidence(example))

    def test_sorted_by_cba_total_order(self, example):
        rules = class_association_rules(example, 0.2, 0.5, max_len=2)
        keys = [(-conf, -count, len(car.antecedent)) for car, count, conf in rules]
        assert keys == sorted(keys)
