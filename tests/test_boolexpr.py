"""Unit tests for the boolean expression algebra."""

import pytest

from repro.rules.boolexpr import (
    FALSE,
    TRUE,
    And,
    Not,
    Or,
    Var,
    any_expressed,
    any_not_expressed,
    conjunction,
    pretty,
)


class TestEvaluation:
    def test_var_true_when_expressed(self):
        assert Var("g1").evaluate({"g1", "g2"}) is True

    def test_var_false_when_absent(self):
        assert Var("g1").evaluate({"g2"}) is False

    def test_not_inverts(self):
        assert Not(Var("g1")).evaluate(set()) is True
        assert Not(Var("g1")).evaluate({"g1"}) is False

    def test_and_requires_all(self):
        expr = And((Var("a"), Var("b")))
        assert expr.evaluate({"a", "b"})
        assert not expr.evaluate({"a"})

    def test_or_requires_any(self):
        expr = Or((Var("a"), Var("b")))
        assert expr.evaluate({"b"})
        assert not expr.evaluate(set())

    def test_constants(self):
        assert TRUE.evaluate(set()) is True
        assert FALSE.evaluate({"a"}) is False

    def test_nested_expression(self):
        # (a AND c) OR (b AND d), the Section 2.1 example shape.
        expr = Or((And((Var("a"), Var("c"))), And((Var("b"), Var("d")))))
        assert expr.evaluate({"a", "c"})
        assert expr.evaluate({"b", "d"})
        assert not expr.evaluate({"a", "d"})


class TestOperators:
    def test_and_operator(self):
        assert (Var("a") & Var("b")).evaluate({"a", "b"})

    def test_or_operator(self):
        assert (Var("a") | Var("b")).evaluate({"b"})

    def test_invert_operator(self):
        assert (~Var("a")).evaluate(set())


class TestAtoms:
    def test_atoms_collects_everything(self):
        expr = Or((And((Var("a"), Not(Var("b")))), Var("c")))
        assert expr.atoms() == {"a", "b", "c"}

    def test_constant_atoms_empty(self):
        assert TRUE.atoms() == frozenset()


class TestSimplify:
    def test_double_negation(self):
        assert Not(Not(Var("a"))).simplify() == Var("a")

    def test_and_with_true_drops(self):
        assert And((Var("a"), TRUE)).simplify() == Var("a")

    def test_and_with_false_collapses(self):
        assert And((Var("a"), FALSE)).simplify() is FALSE

    def test_or_with_true_collapses(self):
        assert Or((Var("a"), TRUE)).simplify() is TRUE

    def test_or_with_false_drops(self):
        assert Or((Var("a"), FALSE)).simplify() == Var("a")

    def test_duplicates_removed(self):
        assert And((Var("a"), Var("a"))).simplify() == Var("a")

    def test_empty_and_is_true(self):
        assert And(()).simplify() is TRUE

    def test_empty_or_is_false(self):
        assert Or(()).simplify() is FALSE

    def test_flattening(self):
        nested = And((And((Var("a"), Var("b"))), Var("c")))
        assert nested.parts == (Var("a"), Var("b"), Var("c"))


class TestBuilders:
    def test_conjunction(self):
        expr = conjunction(["a", "b"])
        assert expr.evaluate({"a", "b"}) and not expr.evaluate({"a"})

    def test_conjunction_empty_is_true(self):
        assert conjunction([]) is TRUE

    def test_conjunction_single(self):
        assert conjunction(["a"]) == Var("a")

    def test_any_not_expressed(self):
        clause = any_not_expressed(["a", "b"])
        assert clause.evaluate({"a"})  # b missing satisfies
        assert not clause.evaluate({"a", "b"})

    def test_any_not_expressed_empty_is_false(self):
        assert any_not_expressed([]) is FALSE

    def test_any_expressed(self):
        clause = any_expressed(["a", "b"])
        assert clause.evaluate({"b"})
        assert not clause.evaluate(set())

    def test_any_expressed_empty_is_false(self):
        assert any_expressed([]) is FALSE


class TestPretty:
    def test_pretty_with_names(self):
        expr = And((Var(0), Not(Var(1))))
        assert pretty(expr, ["g1", "g2"]) == "(g1 AND -g2)"

    def test_pretty_constants(self):
        assert pretty(TRUE) == "TRUE"
        assert pretty(FALSE) == "FALSE"

    def test_pretty_unknown_type_raises(self):
        with pytest.raises(TypeError):
            pretty("not an expression")  # type: ignore[arg-type]
