"""Incremental training data plane: chunked ingestion, append-only
builds, and delta artifact refresh.

Every equivalence here is *bit*-equivalence against the cold path that
already has its own tests — the streaming machinery must be
indistinguishable from rebuilding, only cheaper.  Engine outputs are
compared within one engine (fast vs fast, reference vs reference); the
two engines agree only up to float associativity and that slack belongs
to the arithmetization tests, not here.
"""

import numpy as np
import pytest

from repro.bst.culling import duplicate_row_keep_mask
from repro.bst.table import build_all_bsts
from repro.core.artifact import (
    ArtifactStale,
    load_artifact,
    refresh_artifact,
    save_artifact,
)
from repro.core.classifier import BSTClassifier
from repro.core.estimator import NotFittedError
from repro.core.fast import FastBSTCEvaluator, clear_evaluator_cache, get_evaluator
from repro.core.plan import ARENA_FIELDS, recompile_delta
from repro.datasets.dataset import (
    DatasetError,
    ExpressionMatrix,
    RelationalDataset,
)
from repro.datasets.discretize import EntropyDiscretizer
from repro.datasets.io import (
    concat_expression_chunks,
    iter_expression_tsv,
    load_expression_tsv,
    save_expression_tsv,
)
from repro.errors import NotSupportedError
from repro.evaluation.timing import EngineCounters
from repro.serving import ModelRegistry


def _expression(n_samples=7, n_genes=5, n_classes=3, seed=0):
    rng = np.random.default_rng(seed)
    return ExpressionMatrix(
        gene_names=tuple(f"g{j}" for j in range(n_genes)),
        values=rng.normal(size=(n_samples, n_genes)),
        labels=tuple(int(x) for x in rng.integers(0, n_classes, n_samples)),
        class_names=tuple(f"c{k}" for k in range(n_classes)),
        sample_names=tuple(f"s{i}" for i in range(n_samples)),
    )


def _relational(n_samples, n_items, n_classes=3, density=0.3, seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.random((n_samples, n_items)) < density
    labels = tuple(int(x) for x in rng.integers(0, n_classes, n_samples))
    return RelationalDataset.from_bool_matrix(dense, labels=labels)


class TestChunkedIngestion:
    @pytest.fixture
    def tsv(self, tmp_path):
        path = tmp_path / "data.tsv"
        save_expression_tsv(_expression(), path)
        return path

    @pytest.mark.parametrize("chunk_rows", [1, 2, 3, 7, 100])
    def test_chunked_load_matches_whole_file(self, tsv, chunk_rows):
        """Single-row chunks, a ragged last chunk (7 rows / 3 per chunk),
        an exact fit, and a chunk taller than the file all reproduce the
        whole-file loader bit for bit."""
        whole = load_expression_tsv(tsv)
        chunked = load_expression_tsv(tsv, chunk_rows=chunk_rows)
        assert chunked.gene_names == whole.gene_names
        assert chunked.labels == whole.labels
        assert chunked.class_names == whole.class_names
        assert chunked.sample_names == whole.sample_names
        assert np.array_equal(chunked.values, whole.values)

    def test_iterator_chunk_geometry(self, tsv):
        chunks = list(iter_expression_tsv(tsv, chunk_rows=3))
        assert [c.n_samples for c in chunks] == [3, 3, 1]
        # Cumulative class vocabulary: each chunk's names extend the
        # previous chunk's, so a label id never changes meaning mid-stream.
        for earlier, later in zip(chunks, chunks[1:]):
            assert later.class_names[: len(earlier.class_names)] == (
                earlier.class_names
            )

    def test_concat_round_trips_iterator(self, tsv):
        whole = load_expression_tsv(tsv)
        stitched = concat_expression_chunks(
            list(iter_expression_tsv(tsv, chunk_rows=2))
        )
        assert stitched.labels == whole.labels
        assert stitched.class_names == whole.class_names
        assert np.array_equal(stitched.values, whole.values)

    def test_chunk_rows_must_be_positive(self, tsv):
        with pytest.raises(ValueError, match="chunk_rows"):
            list(iter_expression_tsv(tsv, chunk_rows=0))

    def test_concat_rejects_empty_and_mismatched(self):
        with pytest.raises(DatasetError, match="no chunks"):
            concat_expression_chunks([])
        a = _expression(n_samples=2, seed=1)
        b = ExpressionMatrix(
            gene_names=tuple(f"h{j}" for j in range(5)),
            values=a.values.copy(),
            labels=a.labels,
            class_names=a.class_names,
        )
        with pytest.raises(DatasetError, match="gene names disagree"):
            concat_expression_chunks([a, b])

    def test_duplicate_gene_names_raise_same_error(self, tmp_path):
        path = tmp_path / "dup.tsv"
        path.write_text("sample\tclass\tg0\tg1\tg0\ns1\ta\t1\t2\t3\n")
        with pytest.raises(DatasetError, match="duplicate gene name.*g0"):
            list(iter_expression_tsv(path, chunk_rows=1))

    def test_unparsable_value_raises_same_error(self, tmp_path):
        path = tmp_path / "text.tsv"
        path.write_text("sample\tclass\tg0\tg1\ns1\ta\t1.0\toops\n")
        with pytest.raises(DatasetError, match=r"text\.tsv:2: gene g1"):
            list(iter_expression_tsv(path, chunk_rows=1))

    @pytest.mark.parametrize("bad", ["nan", "inf", "-inf"])
    def test_non_finite_value_raises_same_error(self, bad, tmp_path):
        path = tmp_path / "nonfinite.tsv"
        path.write_text(f"sample\tclass\tg0\tg1\ns1\ta\t1.0\t{bad}\n")
        with pytest.raises(DatasetError, match=r"nonfinite\.tsv:2: gene g1"):
            list(iter_expression_tsv(path, chunk_rows=4))


class TestStreamingDiscretizerFit:
    @pytest.fixture
    def tall_tsv(self, tmp_path):
        path = tmp_path / "tall.tsv"
        save_expression_tsv(_expression(n_samples=40, n_genes=6, seed=7), path)
        return path

    def test_fit_streaming_matches_fit(self, tall_tsv):
        whole = load_expression_tsv(tall_tsv)
        cold = EntropyDiscretizer().fit(whole)
        streamed = EntropyDiscretizer().fit_streaming(
            lambda: iter_expression_tsv(tall_tsv, chunk_rows=7), gene_block=2
        )
        assert streamed.item_names == cold.item_names
        assert [(p.gene_index, p.cuts) for p in streamed.partitions] == [
            (p.gene_index, p.cuts) for p in cold.partitions
        ]
        assert streamed.transform(whole) == cold.transform(whole)

    def test_fit_streaming_empty_stream(self):
        with pytest.raises(DatasetError, match="empty chunk stream"):
            EntropyDiscretizer().fit_streaming(lambda: iter(()))

    def test_gene_block_must_be_positive(self, tall_tsv):
        with pytest.raises(ValueError, match="gene_block"):
            EntropyDiscretizer().fit_streaming(
                lambda: iter_expression_tsv(tall_tsv), gene_block=0
            )


class TestVectorizedTransform:
    def test_matches_scalar_reference(self):
        data = _expression(n_samples=50, n_genes=8, seed=11)
        disc = EntropyDiscretizer().fit(data)
        rng = np.random.default_rng(12)
        probe = rng.normal(size=(30, data.n_genes))
        # Exercise the searchsorted boundary: rows landing exactly on a
        # learned cut point must fall in the same interval both ways.
        for part in disc.partitions:
            probe[: len(part.cuts), part.gene_index] = part.cuts
        assert disc.transform_values(probe) == disc._transform_values_scalar(
            probe
        )

    def test_single_row_shape(self):
        data = _expression(n_samples=20, n_genes=4, seed=13)
        disc = EntropyDiscretizer().fit(data)
        row = data.values[3]
        assert disc.transform_values(row) == disc._transform_values_scalar(row)


class TestDuplicateRowCull:
    def test_matches_unique_reference(self):
        rng = np.random.default_rng(21)
        for trial in range(20):
            n, g = int(rng.integers(1, 40)), int(rng.integers(1, 30))
            matrix = rng.random((n, g)) < 0.4
            # Inject exact duplicates at random positions.
            for _ in range(int(rng.integers(0, 5))):
                matrix[rng.integers(n)] = matrix[rng.integers(n)]
            keep = duplicate_row_keep_mask(matrix)
            _, first = np.unique(matrix, axis=0, return_index=True)
            expected = np.zeros(n, dtype=bool)
            expected[first] = True
            assert np.array_equal(keep, expected), trial

    def test_empty(self):
        assert duplicate_row_keep_mask(np.zeros((0, 4), dtype=bool)).size == 0


class TestAppendOnlyBuild:
    @pytest.fixture
    def split(self):
        full = _relational(36, 40, seed=31)
        base = full.subset(range(30))
        grown = base.append_samples(full.samples[30:], full.labels[30:])
        return full, base, grown

    def test_bsts_identical_to_cold_build(self, split):
        full, base, grown = split
        incremental = build_all_bsts(grown, base=build_all_bsts(base))
        cold = build_all_bsts(grown)
        for inc, ref in zip(incremental, cold):
            assert inc.render() == ref.render()
            assert inc.space_cost() == ref.space_cost()

    @pytest.mark.parametrize("arith", ["min", "product", "mean"])
    def test_plan_arena_byte_identical(self, split, arith):
        _, base, grown = split
        clear_evaluator_cache()
        base_plan = FastBSTCEvaluator(base, arithmetization=arith)._ensure_plan()
        delta = recompile_delta(base_plan, grown, base.n_samples, arith)
        clear_evaluator_cache()
        fresh = RelationalDataset(
            grown.item_names, grown.class_names, grown.samples, grown.labels
        )
        cold = get_evaluator(fresh, arith)._ensure_plan()
        clear_evaluator_cache()
        assert np.array_equal(cold.geometry, delta.geometry)
        for name in ARENA_FIELDS:
            assert cold.arena[name].dtype == delta.arena[name].dtype, name
            assert np.array_equal(cold.arena[name], delta.arena[name]), name

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_append_fit_matches_cold_fit(self, split, engine):
        full, base, grown = split
        incremental = BSTClassifier(engine=engine).fit(base).append_fit(
            full.samples[30:], full.labels[30:]
        )
        cold = BSTClassifier(engine=engine).fit(grown)
        rng = np.random.default_rng(32)
        for _ in range(8):
            query = frozenset(np.flatnonzero(rng.random(40) < 0.3).tolist())
            assert np.array_equal(
                incremental.classification_values(query),
                cold.classification_values(query),
            )
        if engine == "reference":
            query = frozenset(np.flatnonzero(rng.random(40) < 0.3).tolist())
            assert incremental.explain(query) == cold.explain(query)

    def test_append_fit_accepts_pre_grown_dataset(self, split):
        _, base, grown = split
        clf = BSTClassifier().fit(base).append_fit(grown)
        assert clf.dataset.n_samples == grown.n_samples
        # Zero-row growth is a no-op, not an error.
        assert clf.append_fit(grown) is clf

    def test_recompile_delta_rejects_edited_prefix(self, split):
        """A flipped bit in an old row must fail loudly: recompile_delta
        validates the prefix against the arena's stored blocks instead of
        silently inheriting the base weights."""
        _, base, grown = split
        clear_evaluator_cache()
        base_plan = FastBSTCEvaluator(base)._ensure_plan()
        clear_evaluator_cache()
        samples = list(grown.samples)
        samples[0] = frozenset(set(samples[0]) ^ {0})
        tampered = RelationalDataset(
            grown.item_names, grown.class_names, tuple(samples), grown.labels
        )
        with pytest.raises(ValueError, match="append-only extension"):
            recompile_delta(base_plan, tampered, base.n_samples, "min")

    def test_append_fit_error_paths(self, split):
        full, base, grown = split
        with pytest.raises(NotFittedError):
            BSTClassifier().append_fit(grown)
        with pytest.raises(ValueError, match="labels are required"):
            BSTClassifier().fit(base).append_fit(full.samples[30:])
        # A dataset that is not a prefix extension of the training data.
        shuffled = grown.subset(list(range(grown.n_samples - 1, -1, -1)))
        with pytest.raises(ValueError, match="append-only extension"):
            BSTClassifier().fit(base).append_fit(shuffled)


class TestArtifactRefresh:
    @pytest.fixture
    def split(self):
        full = _relational(30, 32, seed=41)
        base = full.subset(range(25))
        grown = base.append_samples(full.samples[25:], full.labels[25:])
        return base, grown

    def test_refresh_matches_cold_fit_and_save(self, split, tmp_path):
        base, grown = split
        path = tmp_path / "model.npz"
        clear_evaluator_cache()
        save_artifact(get_evaluator(base), path)
        refresh_artifact(path, grown)
        clear_evaluator_cache()
        cold_path = tmp_path / "cold.npz"
        save_artifact(get_evaluator(grown), cold_path)
        clear_evaluator_cache()
        refreshed = load_artifact(path)
        cold = load_artifact(cold_path)
        assert refreshed.dataset.fingerprint == grown.fingerprint
        rng = np.random.default_rng(42)
        for _ in range(8):
            query = frozenset(np.flatnonzero(rng.random(32) < 0.3).tolist())
            assert np.array_equal(
                refreshed.classification_values(query),
                cold.classification_values(query),
            )

    def test_refresh_to_out_path_leaves_base(self, split, tmp_path):
        base, grown = split
        path = tmp_path / "model.npz"
        clear_evaluator_cache()
        save_artifact(get_evaluator(base), path)
        clear_evaluator_cache()
        before = path.read_bytes()
        target = refresh_artifact(path, grown, out_path=tmp_path / "v2.npz")
        assert target == tmp_path / "v2.npz"
        assert path.read_bytes() == before
        assert load_artifact(target).dataset.fingerprint == grown.fingerprint

    def test_refresh_rejects_non_extension(self, split, tmp_path):
        base, grown = split
        path = tmp_path / "model.npz"
        clear_evaluator_cache()
        save_artifact(get_evaluator(base), path)
        clear_evaluator_cache()
        before = path.read_bytes()
        shuffled = grown.subset(list(range(grown.n_samples - 1, -1, -1)))
        with pytest.raises(
            ArtifactStale, match="does not match|append-only extension"
        ):
            refresh_artifact(path, shuffled)
        assert path.read_bytes() == before

    def test_registry_refresh_hot_swaps(self, split, tmp_path):
        base, grown = split
        path = tmp_path / "model.npz"
        clear_evaluator_cache()
        save_artifact(get_evaluator(base), path)
        clear_evaluator_cache()
        counters = EngineCounters()
        with ModelRegistry(counters=counters) as registry:
            assert registry.deploy("exp", path).version == 1
            info = registry.refresh("exp", grown)
            assert info.version == 2
            assert info.fingerprint == grown.fingerprint
            query = frozenset({0, 3, 5})
            clear_evaluator_cache()
            expected = get_evaluator(
                RelationalDataset(
                    grown.item_names,
                    grown.class_names,
                    grown.samples,
                    grown.labels,
                )
            )
            assert registry.predict("exp", query) == int(
                np.argmax(expected.classification_values(query))
            )
        assert counters.snapshot().get("registry_refreshes") == 1

    def test_registry_refresh_requires_artifact(self, split):
        base, grown = split
        with ModelRegistry(counters=EngineCounters()) as registry:
            registry.deploy_model("mem", BSTClassifier().fit(base))
            with pytest.raises(NotSupportedError, match="delta-refresh"):
                registry.refresh("mem", grown)
