"""End-to-end integration tests: raw measurements → discretize → classify,
across classifiers, multi-class data and file I/O."""

import numpy as np
import pytest

from repro.baselines.rcbt import RCBTClassifier
from repro.core.classifier import BSTClassifier
from repro.core.explain import explain_classification
from repro.datasets.discretize import EntropyDiscretizer
from repro.datasets.io import (
    load_expression_tsv,
    load_relational_json,
    save_expression_tsv,
    save_relational_json,
)
from repro.datasets.profiles import MULTICLASS_PROFILE, DatasetProfile
from repro.datasets.splits import count_split, fraction_split
from repro.datasets.synthetic import generate_expression_data
from repro.evaluation.metrics import accuracy


def pipeline_accuracy(profile, classifier_factory, seed=0, split_seed=0):
    data = generate_expression_data(profile, seed=seed)
    split = count_split(data, profile.given_training, seed=split_seed)
    train = data.subset(split.train_indices)
    test = data.subset(split.test_indices)
    disc = EntropyDiscretizer().fit(train)
    clf = classifier_factory()
    clf.fit(disc.transform(train))
    queries = disc.transform_values(test.values)
    predictions = [clf.predict(q) for q in queries]
    return accuracy(predictions, test.labels)


class TestEndToEnd:
    def test_bstc_pipeline(self, tiny_profile):
        acc = pipeline_accuracy(tiny_profile, BSTClassifier)
        assert acc >= 0.75

    def test_bstc_reference_engine_pipeline(self, tiny_profile):
        acc = pipeline_accuracy(
            tiny_profile, lambda: BSTClassifier(engine="reference")
        )
        assert acc >= 0.75

    def test_rcbt_pipeline(self, tiny_profile):
        acc = pipeline_accuracy(
            tiny_profile, lambda: RCBTClassifier(k=5, min_support=0.6, nl=5)
        )
        assert acc >= 0.6

    def test_multiclass_pipeline(self):
        """Section 5.3's claim: BSTC handles N > 2 classes unchanged."""
        profile = DatasetProfile(
            name="M3",
            long_name="tiny 3-class",
            n_genes=240,
            class_labels=("a", "b", "c"),
            class_counts=(14, 14, 14),
            given_training=(9, 9, 9),
            informative_fraction=0.25,
            effect_size=2.5,
        )
        acc = pipeline_accuracy(profile, BSTClassifier)
        assert acc >= 0.7

    def test_explanations_from_pipeline(self, tiny_profile):
        data = generate_expression_data(tiny_profile, seed=0)
        split = count_split(data, tiny_profile.given_training, seed=0)
        train = data.subset(split.train_indices)
        test = data.subset(split.test_indices)
        disc = EntropyDiscretizer().fit(train)
        clf = BSTClassifier().fit(disc.transform(train))
        query = disc.transform_values(test.values)[0]
        explanation = explain_classification(clf, query, min_satisfaction=0.8)
        assert explanation.predicted in (0, 1)
        assert explanation.evidence  # strong rules exist on planted data

    def test_io_roundtrip_through_pipeline(self, tiny_profile, tmp_path):
        data = generate_expression_data(tiny_profile, seed=2)
        tsv = tmp_path / "data.tsv"
        save_expression_tsv(data, tsv)
        reloaded = load_expression_tsv(tsv)
        split = fraction_split(reloaded, 0.6, seed=1)
        train = reloaded.subset(split.train_indices)
        disc = EntropyDiscretizer().fit(train)
        rel = disc.transform(train)
        json_path = tmp_path / "rel.json"
        save_relational_json(rel, json_path)
        rel2 = load_relational_json(json_path)
        clf = BSTClassifier().fit(rel2)
        test = reloaded.subset(split.test_indices)
        queries = disc.transform_values(test.values)
        acc = accuracy([clf.predict(q) for q in queries], test.labels)
        assert acc >= 0.6

    def test_train_samples_classified_correctly(self, tiny_profile):
        """On clean planted data, resubstitution accuracy should be high."""
        data = generate_expression_data(tiny_profile, seed=1)
        disc = EntropyDiscretizer().fit(data)
        rel = disc.transform(data)
        clf = BSTClassifier().fit(rel)
        predictions = clf.predict_batch(rel.bool_matrix)
        assert accuracy(predictions, rel.labels) >= 0.9
