"""Experiment driver tests: every registered table/figure runs and produces
sane rows (on tiny configurations)."""

import pytest

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_experiment
from repro.experiments.report import format_accuracy, format_seconds, format_table
from repro.experiments.study import clear_study_cache, run_cv_study

FAST = ExperimentConfig(n_tests=2, topk_cutoff=3.0, rcbt_cutoff=3.0, forest_trees=10)


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
            "table2", "table3", "table4", "table5", "table6", "table7",
            "prelim", "scaling", "ablation_arith", "ablation_mining",
        }
        assert expected <= set(experiment_ids())

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment("table99")

    def test_default_config(self):
        result = run_experiment("fig1")
        assert isinstance(result, ExperimentResult)


class TestRunningExampleExperiments:
    def test_fig3_matches_paper(self):
        result = run_experiment("fig3", FAST)
        assert all(row[3] for row in result.rows), "paper values must match"

    def test_fig1_structure(self):
        result = run_experiment("fig1", FAST)
        props = dict(result.rows)
        assert props["class"] == "Cancer"
        assert props["black dots"] == 2
        assert "BST for class Cancer" in result.extra_text

    def test_fig2_six_rules_all_confident(self):
        result = run_experiment("fig2", FAST)
        assert len(result.rows) == 6
        assert all(row[3] == 1.0 for row in result.rows)


class TestDatasetExperiments:
    def test_table2_rows(self):
        result = run_experiment("table2", FAST)
        names = [row[0] for row in result.rows]
        assert [n.split("-")[0] for n in names] == ["ALL", "LC", "PC", "OC"]
        for row in result.rows:
            assert row[4] > 0 and row[5] > 0

    def test_table3_accuracies_present(self):
        result = run_experiment("table3", FAST)
        assert result.rows[-1][0] == "Average"
        for row in result.rows[:-1]:
            assert row[4].endswith("%")  # BSTC accuracy formatted


class TestCVExperiments:
    def test_fig4_runs_and_reports_bstc(self):
        clear_study_cache()
        result = run_experiment("fig4", FAST)
        bstc_rows = [r for r in result.rows if r[1] == "BSTC"]
        assert len(bstc_rows) == 4  # one per training size
        for row in bstc_rows:
            assert row[2] == FAST.n_tests  # all tests finished

    def test_study_cache_reused(self):
        clear_study_cache()
        a = run_cv_study("ALL", FAST)
        b = run_cv_study("ALL", FAST)
        assert a is b

    def test_table4_and_table5_consistent(self):
        result4 = run_experiment("table4", FAST)
        result5 = run_experiment("table5", FAST)
        labels4 = [row[0] for row in result4.rows]
        labels5 = [row[0] for row in result5.rows]
        assert labels4 == labels5
        assert result4.headers[:3] == ["Training", "BSTC", "Top-k"]


class TestJournalScope:
    def test_scope_pins_dataset_and_config(self):
        scope = FAST.journal_scope("ALL")
        assert scope.startswith("ALL|")
        assert scope != FAST.journal_scope("LC")
        reseeded = ExperimentConfig(
            n_tests=2, topk_cutoff=3.0, rcbt_cutoff=3.0, forest_trees=10,
            seed=99,
        )
        assert reseeded.journal_scope("ALL") != scope

    def test_scope_ignores_resilience_knobs(self):
        # Parallel/retry/journal knobs don't shape fold results, so a
        # serial journal resumes a parallel run (and vice versa).
        parallel = ExperimentConfig(
            n_tests=2, topk_cutoff=3.0, rcbt_cutoff=3.0, forest_trees=10,
            n_jobs=2, retries=5,
        )
        assert parallel.journal_scope("ALL") == FAST.journal_scope("ALL")

    def test_scope_distinguishes_effective_nl(self):
        assert FAST.journal_scope("ALL", nl=20) != FAST.journal_scope("ALL", nl=2)
        assert FAST.journal_scope("ALL", nl=20) != FAST.journal_scope("ALL")

    def test_study_journal_scopes_records_by_dataset(self, tmp_path):
        """One journal backing two datasets keeps their records apart and
        resumes each study from its own keys only."""
        from repro.evaluation.journal import ResultJournal

        clear_study_cache()
        path = str(tmp_path / "all.jsonl")
        cfg = ExperimentConfig(
            n_tests=1, topk_cutoff=3.0, rcbt_cutoff=3.0, journal=path
        )
        first = run_cv_study("ALL", cfg, include_rcbt=False)
        run_cv_study("LC", cfg, include_rcbt=False)
        stored = ResultJournal(path).load_results()
        scopes = {key[0] for key in stored}
        assert scopes == {
            cfg.journal_scope(cfg.profile("ALL").name),
            cfg.journal_scope(cfg.profile("LC").name),
        }

        # Resuming the ALL study splices exactly its own records back.
        clear_study_cache()
        resumed_cfg = ExperimentConfig(
            n_tests=1, topk_cutoff=3.0, rcbt_cutoff=3.0, journal=path,
            resume=True,
        )
        resumed = run_cv_study("ALL", resumed_cfg, include_rcbt=False)
        assert [
            (r.classifier, r.size_label, r.test_index, r.accuracy, r.phases)
            for r in resumed.results
        ] == [
            (r.classifier, r.size_label, r.test_index, r.accuracy, r.phases)
            for r in first.results
        ]


class TestComplexity:
    def test_complexity_driver(self):
        result = run_experiment("complexity", FAST)
        assert len(result.rows) == 5
        assert "log-log slope" in result.extra_text


class TestAblations:
    def test_ablation_arith_rows(self):
        result = run_experiment("ablation_arith", FAST)
        assert result.rows[-1][0] == "Mean"
        assert len(result.headers) == 4

    def test_ablation_mining_progressive(self):
        result = run_experiment("ablation_mining", FAST)
        ks = [row[0] for row in result.rows]
        assert ks == [1, 5, 10, 25, 50]
        mined = [row[1] for row in result.rows]
        assert mined == sorted(mined)  # more k never yields fewer rules


class TestReportFormatting:
    def test_format_table_aligns(self):
        text = format_table(["a", "long header"], [(1, 2.5), ("x", None)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # all same width

    def test_format_accuracy(self):
        assert format_accuracy(0.8235) == "82.35%"
        assert format_accuracy(None) == "-"

    def test_format_seconds(self):
        assert format_seconds(2.0) == "2.00"
        assert format_seconds(2.0, finished=False) == ">= 2.00"
        assert format_seconds(None) == "-"

    def test_render_contains_notes(self):
        result = ExperimentResult("x", "t", ["h"], [(1,)], notes=["hello"])
        assert "note: hello" in result.render()
