"""Cross-miner consistency: Apriori, CHARM and Algorithm 3 must agree.

Three independent implementations traverse the same pattern space from
different directions (level-wise item space, depth-first item space with
closure jumping, and row-space intersection).  Their outputs are linked by
exact set identities, which these tests verify on random data — a strong
guard against subtle enumeration bugs in any one of them.
"""

import numpy as np
import pytest

from repro.baselines.apriori import apriori_frequent_itemsets
from repro.baselines.charm import charm_closed_itemsets
from repro.bst.mining import mine_mcmcbar
from repro.bst.table import BST

from conftest import random_relational


def random_transactions(rng, n_range=(3, 9), m_range=(2, 8)):
    n = int(rng.integers(*n_range))
    m = int(rng.integers(*m_range))
    return [
        frozenset(int(j) for j in np.flatnonzero(rng.random(m) < 0.5))
        for _ in range(n)
    ]


def closure(transactions, itemset):
    supporting = [t for t in transactions if itemset <= t]
    if not supporting:
        return frozenset()
    result = supporting[0]
    for t in supporting[1:]:
        result = result & t
    return result


class TestCharmVsApriori:
    def test_closed_sets_are_frequent_with_same_count(self):
        rng = np.random.default_rng(141)
        for _ in range(10):
            transactions = random_transactions(rng)
            for min_count in (1, 2):
                frequent = apriori_frequent_itemsets(transactions, min_count)
                closed = charm_closed_itemsets(transactions, min_count)
                for itemset, count in closed.items():
                    assert frequent.get(itemset) == count

    def test_every_frequent_itemset_closes_into_charm(self):
        rng = np.random.default_rng(143)
        for _ in range(10):
            transactions = random_transactions(rng)
            for min_count in (1, 2):
                frequent = apriori_frequent_itemsets(transactions, min_count)
                closed = charm_closed_itemsets(transactions, min_count)
                for itemset, count in frequent.items():
                    clo = closure(transactions, itemset)
                    assert clo in closed
                    assert closed[clo] == count

    def test_closed_count_never_exceeds_frequent(self):
        rng = np.random.default_rng(145)
        for _ in range(6):
            transactions = random_transactions(rng)
            frequent = apriori_frequent_itemsets(transactions, 1)
            closed = charm_closed_itemsets(transactions, 1)
            assert len(closed) <= len(frequent)


class TestCharmVsAlgorithm3:
    def test_supports_coincide(self):
        """Algorithm 3's supportable class subsets are exactly the tidsets of
        CHARM's closed itemsets over the class rows."""
        rng = np.random.default_rng(147)
        for _ in range(10):
            ds = random_relational(rng, n_samples_range=(4, 9))
            class_rows = list(ds.class_members(0))
            transactions = [ds.samples[r] for r in class_rows]
            if not any(transactions):
                continue
            closed = charm_closed_itemsets(transactions, 1)
            expected_supports = set()
            for itemset in closed:
                tids = frozenset(
                    class_rows[i]
                    for i, t in enumerate(transactions)
                    if itemset <= t
                )
                expected_supports.add(tids)
            bst = BST.build(ds, 0)
            mined = mine_mcmcbar(bst, k=10**6)
            assert {r.support for r in mined} == expected_supports

    def test_car_portions_are_charm_closures(self):
        """Each (MC)²BAR's CAR portion equals the CHARM closure of its
        support rows' transactions."""
        rng = np.random.default_rng(149)
        for _ in range(8):
            ds = random_relational(rng, n_samples_range=(4, 8))
            bst = BST.build(ds, 0)
            for rule in mine_mcmcbar(bst, k=50):
                rows = [ds.samples[r] for r in rule.support]
                assert rule.car_items == closure(rows, frozenset())
