#!/usr/bin/env python
"""End-to-end replay smoke: chaos trace against a real ``serve`` process.

CI runs this after the gateway smoke: build a tiny artifact, boot the
real CLI server in a subprocess, then replay a *seeded* chaos trace over
HTTP — a deadline storm plus an explain mix against an artifact-only
slot — and assert the client-side ledger reconciles exactly-once: every
submitted request got exactly one outcome, storms produced deadline
rejections, explains produced structured refusals, and nothing was lost
or double-counted across the wire.

The run also probes the request-guard envelopes (an oversized body must
come back as a 413 ``RequestTooLarge`` JSON error) and finishes by
sending SIGTERM, asserting the server drains and exits 0 — the graceful
shutdown path CI would otherwise never exercise.

The replay report is written to ``BENCH_replay_http.json`` (override
with ``REPRO_REPLAY_SMOKE_JSON``) so CI can upload it next to the
capacity report from ``benchmarks/bench_replay.py``.

Usage::

    PYTHONPATH=src python scripts/replay_smoke.py

Exits 0 on success; any reconciliation or lifecycle violation raises.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.core.classifier import BSTClassifier  # noqa: E402
from repro.datasets.dataset import running_example  # noqa: E402
from repro.replay import (  # noqa: E402
    ChaosMix,
    HttpTarget,
    ReplayDriver,
    TraceConfig,
    dumps_trace,
    generate_trace,
)

SEED = 2026
REQUESTS = 240


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _request(url, body=None, timeout=5):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _await_ready(ready_file, server, deadline=30.0):
    """Readiness via --ready-file (the supervisor's signal), confirmed
    with one /health probe."""
    limit = time.monotonic() + deadline
    while time.monotonic() < limit:
        if os.path.exists(ready_file):
            base = open(ready_file).read().strip()
            if base:
                status, payload = _request(f"{base}/health", timeout=5)
                _expect(
                    status == 200 and payload.get("ready"),
                    f"ready file up but /health said {status}: {payload}",
                )
                return base
        if server.poll() is not None:
            raise SystemExit(
                f"server exited {server.returncode} before becoming ready"
            )
        time.sleep(0.05)
    raise SystemExit("gateway never wrote its ready file")


def _expect(condition, message):
    if not condition:
        raise SystemExit(f"smoke failure: {message}")


def _chaos_trace():
    """A deterministic HTTP-replayable chaos mix.

    Poison markers and artifact swaps need the in-process fault harness,
    so over the wire the chaos is what a remote client can actually
    inflict: a mid-trace deadline storm (deadline_ms=0 — every request in
    the window expires at admission) riding on an explain mix that an
    artifact-only slot must refuse with a structured 501.
    """
    config = TraceConfig(
        seed=SEED,
        requests=REQUESTS,
        rate_qps=400.0,
        arrival="burst",
        n_items=running_example().n_items,
        models=("replay",),
        explain_fraction=0.15,
        chaos=ChaosMix(deadline_storms=((150.0, 350.0, 0.0),)),
    )
    trace = generate_trace(config)
    _expect(
        dumps_trace(trace) == dumps_trace(generate_trace(config)),
        "trace generation is not deterministic",
    )
    return trace


def main() -> int:
    trace = _chaos_trace()
    with tempfile.TemporaryDirectory() as tmp:
        artifact = BSTClassifier().fit(running_example()).save(
            os.path.join(tmp, "model.npz")
        )
        port = _free_port()
        ready_file = os.path.join(tmp, "gateway.ready")
        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--model",
                f"replay={artifact}",
                "--port",
                str(port),
                "--ready-file",
                ready_file,
            ],
            env={**os.environ, "PYTHONPATH": "src"},
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        output = ""
        try:
            base = _await_ready(ready_file, server)

            report = ReplayDriver(HttpTarget(base)).run(trace, speed=0.0)
            print(report.describe())
            _expect(report.reconciled, f"mismatches: {report.mismatches}")
            _expect(
                report.submitted == REQUESTS,
                f"submitted {report.submitted} != {REQUESTS}",
            )
            _expect(report.answered > 0, "no request was answered")
            _expect(
                report.outcomes.get("deadline", 0) > 0,
                "the deadline storm produced no deadline rejections",
            )
            _expect(
                report.outcomes.get("unsupported", 0) > 0,
                "explain against an artifact slot did not 501",
            )
            _expect(
                report.outcomes.get("transport", 0) == 0,
                f"transport failures: {report.outcomes}",
            )

            # Request guards: a declared-oversized body must bounce as a
            # JSON 413 before the server reads a single payload byte.  Use
            # a raw socket — the server hangs up after refusing, so a
            # client mid-upload would only see EPIPE.
            with socket.create_connection(
                ("127.0.0.1", port), timeout=10
            ) as conn:
                declared = 4 * 1024 * 1024 + 1
                conn.sendall(
                    b"POST /v1/models/replay:predict HTTP/1.1\r\n"
                    b"Host: localhost\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: " + str(declared).encode() + b"\r\n"
                    b"\r\n"
                )
                chunks = []
                while True:
                    chunk = conn.recv(65536)
                    if not chunk:
                        break
                    chunks.append(chunk)
            response = b"".join(chunks).decode("utf-8", "replace")
            _expect(
                " 413 " in response.splitlines()[0],
                f"oversized body -> {response.splitlines()[0]!r}",
            )
            _expect(
                "RequestTooLarge" in response,
                f"no RequestTooLarge envelope in:\n{response}",
            )

            out_path = os.environ.get(
                "REPRO_REPLAY_SMOKE_JSON", "BENCH_replay_http.json"
            )
            payload = dict(report.to_dict())
            payload["suite"] = "replay_smoke"
            payload["seed"] = SEED
            payload["unix_time"] = time.time()
            with open(out_path, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
        finally:
            server.send_signal(signal.SIGTERM)
            try:
                output, _ = server.communicate(timeout=15)
            except subprocess.TimeoutExpired:
                server.kill()
                raise SystemExit("server ignored SIGTERM; killed")
        _expect(server.returncode == 0, f"server exited {server.returncode}")
        _expect(
            "draining and shutting down" in output,
            f"no drain message in server output:\n{output}",
        )
    print("replay smoke: chaos trace reconciled, server drained cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
