#!/usr/bin/env python
"""Fail CI when a gated benchmark ratio regresses against the committed
baseline.

Compares the freshly written ``BENCH_micro.json`` / ``BENCH_replay.json``
in the working tree against the last committed entry (``git show
<ref>:<file>``).  Only the *gated* ratios are compared — the numbers the
benchmark suite itself asserts on — with a direction per key (speedups
must not drop, peak-memory ratios must not rise) and a relative
tolerance (default 20%).

Records from different modes are incomparable: a smoke-mode run shrinks
the profiles, so if the ``smoke`` flags disagree the suite is skipped
with a note instead of producing a bogus verdict.  A file missing on
either side (first commit, bench not run) is likewise a skip, not a
failure — the script gates *trends*, it does not require benches to have
run.

Usage::

    python scripts/bench_trend.py [--baseline-ref HEAD] [--tolerance 0.2]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Gated keys per suite file: ``up`` means higher is better (a drop
#: beyond tolerance fails), ``down`` means lower is better.
GATES = {
    "BENCH_micro.json": {
        "batched_bstce_speedup": "up",
        "bitset_support_counting_speedup": "up",
        "bitset_closure_speedup": "up",
        "artifact_cold_start_speedup": "up",
        "artifact_v2_vs_v1_cold_start_speedup": "up",
        "plan_kernel_speedup": "up",
        "plan_hot_bytes_ratio": "down",
        "incremental_append_speedup": "up",
        "chunked_ingest_peak_ratio_10x": "down",
    },
    "BENCH_replay.json": {
        "saturation_qps": "up",
        "unpaced_achieved_qps": "up",
        "chaos.p99_ms_under_breaker_trips": "down",
        "kill_mttr_s": "down",
    },
}


def load_current(name: str):
    path = REPO / name
    if not path.exists():
        return None
    with path.open("r", encoding="utf-8") as handle:
        return json.load(handle)


def load_baseline(name: str, ref: str):
    proc = subprocess.run(
        ["git", "show", f"{ref}:{name}"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def gated_value(record, key):
    """A gated number lives under ``results`` (bench_micro) or at the top
    level (bench_replay); dots descend into nested sections (``chaos.p99``)
    and anything non-scalar — including booleans — is treated as absent."""
    container = record.get("results", record)
    value = container
    for part in key.split("."):
        if not isinstance(value, dict):
            return None
        value = value.get(part)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return value


def compare_suite(name: str, gates, ref: str, tolerance: float):
    current = load_current(name)
    baseline = load_baseline(name, ref)
    if current is None or baseline is None:
        which = "working tree" if current is None else f"{ref}"
        print(f"{name}: no record in {which} — skipped")
        return []
    if bool(current.get("smoke")) != bool(baseline.get("smoke")):
        print(
            f"{name}: smoke flags differ (current={current.get('smoke')},"
            f" baseline={baseline.get('smoke')}) — incomparable, skipped"
        )
        return []
    failures = []
    for key, direction in sorted(gates.items()):
        cur = gated_value(current, key)
        base = gated_value(baseline, key)
        if cur is None or base is None or base == 0:
            continue
        change = (cur - base) / abs(base)
        arrow = f"{base:.3f} -> {cur:.3f} ({change:+.1%})"
        if direction == "up":
            bad = change < -tolerance
        else:
            bad = change > tolerance
        verdict = "REGRESSED" if bad else "ok"
        print(f"{name}: {key}: {arrow} [{verdict}]")
        if bad:
            failures.append(f"{name}:{key} {arrow}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-ref",
        default="HEAD",
        help="git ref holding the committed baseline (default HEAD)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed relative regression per gated ratio (default 0.2)",
    )
    args = parser.parse_args(argv)

    failures = []
    for name, gates in GATES.items():
        failures.extend(
            compare_suite(name, gates, args.baseline_ref, args.tolerance)
        )
    if failures:
        print(
            f"\n{len(failures)} gated ratio(s) regressed more than"
            f" {args.tolerance:.0%}:"
        )
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nbench trend: no gated ratio regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
