#!/usr/bin/env python
"""End-to-end kill-chaos smoke: SIGKILL a supervised gateway mid-replay.

CI runs this after the replay chaos smoke.  It exercises the whole
process-resilience loop with real processes and real sockets:

1. fit the paper's running example and save it as a compiled artifact;
2. boot ``repro.cli serve`` as a **supervised child** (readiness file,
   state file, admin token) via :class:`~repro.serving.GatewaySupervisor`;
3. replay a paced trace whose chaos mix carries one ``kill`` control —
   the driver SIGKILLs the gateway process mid-traffic through the
   supervisor handle;
4. assert the supervision contract held: the supervisor restarted the
   child at least once, every submitted request is accounted exactly
   once (in-flight ones as ``interrupted``, never lost or duplicated),
   and MTTR — SIGKILL to the first answered response off the restarted
   process — is finite and sane.

The report is written to ``BENCH_replay_kill.json`` (override with
``REPRO_KILL_SMOKE_JSON``) and uploaded next to the other bench
artifacts, so recovery time is a per-commit series like saturation QPS.

Usage::

    PYTHONPATH=src python scripts/kill_chaos_smoke.py

Exits 0 on success; any reconciliation or supervision violation raises.
"""

import json
import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.core.classifier import BSTClassifier  # noqa: E402
from repro.datasets.dataset import running_example  # noqa: E402
from repro.replay import run_kill_chaos  # noqa: E402


def _expect(condition, message):
    if not condition:
        raise SystemExit(f"smoke failure: {message}")


def main() -> int:
    classifier = BSTClassifier().fit(running_example())
    with tempfile.TemporaryDirectory(prefix="repro-kill-smoke-") as workdir:
        payload = run_kill_chaos(
            classifier,
            workdir,
            requests=60,
            rate_qps=10.0,
            log=lambda message: print(f"  {message}"),
        )

    _expect(payload["reconciled"], f"mismatches: {payload['mismatches']}")
    _expect(
        payload["restarts"] >= 1,
        "the supervisor never restarted the killed gateway",
    )
    _expect(
        payload["interrupted"] >= 1,
        f"no in-flight request saw the outage: {payload['outcomes']}",
    )
    _expect(
        payload["outcomes"].get("answered", 0) >= 1,
        "nothing was answered after the restart",
    )
    kill_control = next(
        (c for c in payload["controls"] if c["action"] == "kill"), None
    )
    _expect(
        kill_control is not None and kill_control["applied"],
        f"the kill control was not applied: {payload['controls']}",
    )
    _expect(
        payload["kill_mttr_s"] is not None
        and 0.0 < payload["kill_mttr_s"] < 30.0,
        f"implausible MTTR: {payload['kill_mttr_s']}",
    )

    out_path = os.environ.get(
        "REPRO_KILL_SMOKE_JSON", "BENCH_replay_kill.json"
    )
    record = dict(payload)
    record["suite"] = "kill_chaos_smoke"
    record["unix_time"] = time.time()
    with open(out_path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(
        "kill chaos smoke: gateway SIGKILLed and restarted"
        f" ({payload['restarts']} restart(s)),"
        f" {payload['interrupted']} interrupted,"
        f" ledger reconciled, MTTR {payload['kill_mttr_s']:.2f}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
