#!/usr/bin/env python
"""Prove chunked ingestion runs under an address-space ceiling the
whole-file loader cannot.

The script writes a tall synthetic expression TSV (streamed row by row —
the full matrix is never held while generating), then:

1. caps the process's address space at *current usage + headroom* via
   ``RLIMIT_AS``, sized so the whole-file parse (a Python list-of-lists
   costs ~5x the final float64 array) cannot fit;
2. streams the file through ``iter_expression_tsv`` under that cap,
   folding a per-gene running sum — this must succeed;
3. re-executes itself in a subprocess with the same cap and runs the
   whole-file ``load_expression_tsv`` — this must *fail* with
   ``MemoryError``, proving the ceiling is tight enough to mean
   something, not just generous.

Linux-only (``RLIMIT_AS`` + ``/proc/self/status``); elsewhere it exits 0
with a note so the CI job is a no-op on exotic runners.

Usage::

    python scripts/memory_ceiling.py [--rows 40000] [--genes 256]
                                     [--headroom-mb 256] [--chunk-rows 256]
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def current_address_space_bytes() -> int:
    with open("/proc/self/status", "r", encoding="ascii") as handle:
        for line in handle:
            if line.startswith("VmSize:"):
                return int(line.split()[1]) * 1024
    raise RuntimeError("VmSize not found in /proc/self/status")


def apply_ceiling(headroom_mb: int) -> int:
    import resource

    ceiling = current_address_space_bytes() + headroom_mb * (1 << 20)
    resource.setrlimit(resource.RLIMIT_AS, (ceiling, ceiling))
    return ceiling


def write_tall_tsv(path: Path, rows: int, genes: int, seed: int) -> None:
    import numpy as np

    rng = np.random.default_rng(seed)
    block = 512
    with path.open("w", encoding="utf-8") as handle:
        handle.write(
            "sample\tclass\t" + "\t".join(f"g{j}" for j in range(genes)) + "\n"
        )
        for start in range(0, rows, block):
            stop = min(start + block, rows)
            values = rng.normal(size=(stop - start, genes))
            labels = rng.integers(0, 3, size=stop - start)
            for k in range(stop - start):
                row = "\t".join(f"{v:.3f}" for v in values[k])
                handle.write(f"s{start + k}\tc{labels[k]}\t{row}\n")


def run_chunked(path: Path, chunk_rows: int):
    import numpy as np

    from repro.datasets.io import iter_expression_tsv

    total = None
    n_rows = 0
    for chunk in iter_expression_tsv(path, chunk_rows=chunk_rows):
        colsum = chunk.values.sum(axis=0)
        total = colsum if total is None else total + colsum
        n_rows += chunk.n_samples
    return n_rows, float(np.abs(total).sum())


def run_whole_file(path: Path) -> None:
    from repro.datasets.io import load_expression_tsv

    data = load_expression_tsv(path)
    print(f"whole-file load unexpectedly fit: {data.values.shape}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=40000)
    parser.add_argument("--genes", type=int, default=256)
    parser.add_argument("--headroom-mb", type=int, default=256)
    parser.add_argument("--chunk-rows", type=int, default=256)
    parser.add_argument("--seed", type=int, default=97)
    parser.add_argument(
        "--whole-file",
        metavar="TSV",
        help="(internal) attempt the whole-file load of TSV under the cap",
    )
    args = parser.parse_args(argv)

    if sys.platform != "linux":
        print(f"memory ceiling: {sys.platform} has no RLIMIT_AS — skipped")
        return 0

    if args.whole_file:
        # Subprocess leg: same cap, whole-file loader, expected to die.
        import numpy  # noqa: F401  -- map BLAS before the cap lands

        apply_ceiling(args.headroom_mb)
        run_whole_file(Path(args.whole_file))
        return 0

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "tall.tsv"
        print(
            f"writing {args.rows} x {args.genes} profile"
            f" ({args.rows * args.genes * 8 / 1e6:.0f} MB as float64) ..."
        )
        write_tall_tsv(path, args.rows, args.genes, args.seed)
        print(f"tsv on disk: {path.stat().st_size / 1e6:.0f} MB")

        ceiling = apply_ceiling(args.headroom_mb)
        print(
            f"address space capped at {ceiling / 1e6:.0f} MB"
            f" (current + {args.headroom_mb} MB headroom)"
        )

        n_rows, checksum = run_chunked(path, args.chunk_rows)
        if n_rows != args.rows:
            print(f"FAIL: chunked ingest saw {n_rows} of {args.rows} rows")
            return 1
        print(
            f"chunked ingest ok under the cap: {n_rows} rows,"
            f" checksum {checksum:.3f}"
        )

        proc = subprocess.run(
            [
                sys.executable,
                os.path.abspath(__file__),
                "--whole-file",
                str(path),
                "--headroom-mb",
                str(args.headroom_mb),
            ],
            capture_output=True,
            text=True,
        )
        if proc.returncode == 0:
            print("FAIL: whole-file load fit under the same cap — the")
            print("ceiling is too loose to prove anything; lower")
            print("--headroom-mb or raise --rows")
            print(proc.stdout)
            return 1
        tail = (proc.stderr or proc.stdout).strip().splitlines()
        reason = tail[-1] if tail else f"exit code {proc.returncode}"
        print(f"whole-file load died under the same cap as expected: {reason}")
    print("memory ceiling: chunked ingest holds the budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
