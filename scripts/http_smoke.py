#!/usr/bin/env python
"""End-to-end HTTP smoke: boot ``repro.cli serve``, probe it, tear it down.

CI runs this as its gateway smoke job: build a tiny artifact, start the
real CLI server in a subprocess with ``--ready-file``, wait for the
readiness file (the same signal the process supervisor uses), then
assert the JSON schema of every public endpoint — predict, explain-refusal,
model listing, and the error envelope — before shutting the server down
and checking it exits cleanly and revokes its readiness file.

Usage::

    PYTHONPATH=src python scripts/http_smoke.py

Exits 0 on success; any schema or lifecycle violation raises (non-zero).
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.core.classifier import BSTClassifier  # noqa: E402
from repro.datasets.dataset import running_example  # noqa: E402


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _request(url, body=None, timeout=5):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _await_ready(ready_file, server, deadline=30.0):
    """Readiness via the gateway's --ready-file: wait for the file, read
    the base URL out of it, then confirm with one /health probe (no
    poll-the-socket guesswork)."""
    limit = time.monotonic() + deadline
    while time.monotonic() < limit:
        if os.path.exists(ready_file):
            base = open(ready_file).read().strip()
            if base:
                status, payload = _request(f"{base}/health", timeout=5)
                _expect(
                    status == 200 and payload.get("ready"),
                    f"ready file up but /health said {status}: {payload}",
                )
                return base, payload
        if server.poll() is not None:
            raise SystemExit(
                f"server exited {server.returncode} before becoming ready"
            )
        time.sleep(0.05)
    raise SystemExit("gateway never wrote its ready file")


def _expect(condition, message):
    if not condition:
        raise SystemExit(f"smoke failure: {message}")


def main() -> int:
    example = running_example()
    expected = BSTClassifier().fit(example).predict(frozenset({0, 3, 4}))
    with tempfile.TemporaryDirectory() as tmp:
        artifact = BSTClassifier().fit(example).save(
            os.path.join(tmp, "model.npz")
        )
        port = _free_port()
        ready_file = os.path.join(tmp, "gateway.ready")
        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--model",
                f"smoke={artifact}",
                "--port",
                str(port),
                "--ready-file",
                ready_file,
            ],
            env={**os.environ, "PYTHONPATH": "src"},
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            base, health = _await_ready(ready_file, server)
            _expect(
                health["models"]["smoke"]["state"] == "serving",
                f"unexpected health payload: {health}",
            )

            status, models = _request(f"{base}/v1/models")
            _expect(status == 200, f"GET /v1/models -> {status}")
            _expect(
                [m["name"] for m in models["models"]] == ["smoke"],
                f"unexpected model listing: {models}",
            )
            for key in (
                "name",
                "version",
                "fingerprint",
                "n_items",
                "n_classes",
                "class_names",
                "supports_explain",
            ):
                _expect(
                    key in models["models"][0],
                    f"model metadata missing {key!r}",
                )

            status, payload = _request(
                f"{base}/v1/models/smoke:predict", {"items": [0, 3, 4]}
            )
            _expect(status == 200, f"predict -> {status}: {payload}")
            for key in ("model", "version", "prediction", "class_name",
                        "values"):
                _expect(key in payload, f"predict payload missing {key!r}")
            _expect(
                payload["prediction"] == expected,
                f"prediction {payload['prediction']} != {expected}",
            )
            _expect(
                len(payload["values"]) == example.n_classes,
                "values length != n_classes",
            )

            # The error envelope: bad query, unknown model, explain refusal.
            status, payload = _request(
                f"{base}/v1/models/smoke:predict", {"items": "zero"}
            )
            _expect(status == 400, f"bad query -> {status}")
            error = payload["error"]
            for key in ("type", "message", "status"):
                _expect(key in error, f"error envelope missing {key!r}")
            _expect(error["type"] == "QueryError", f"type {error['type']}")

            status, payload = _request(
                f"{base}/v1/models/ghost:predict", {"items": [0]}
            )
            _expect(status == 404, f"unknown model -> {status}")
            _expect(payload["error"]["type"] == "ModelNotFound", payload)

            status, payload = _request(
                f"{base}/v1/models/smoke:explain", {"items": [0, 3, 4]}
            )
            _expect(status == 501, f"artifact explain -> {status}")
            _expect(
                payload["error"]["type"] == "NotSupportedError", payload
            )
        finally:
            server.send_signal(signal.SIGINT)
            try:
                code = server.wait(timeout=15)
            except subprocess.TimeoutExpired:
                server.kill()
                raise SystemExit("server ignored SIGINT; killed")
        _expect(code == 0, f"server exited {code}")
        _expect(
            not os.path.exists(ready_file),
            "ready file survived the drain: readiness was never revoked",
        )
    print("http smoke: all endpoints healthy")
    return 0


if __name__ == "__main__":
    sys.exit(main())
